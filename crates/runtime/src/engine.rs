//! The streaming engine: producer pacing, decoder worker pool, and the run
//! orchestration that turns seeded syndrome streams into a
//! [`RuntimeReport`].
//!
//! One producer thread interleaves the seeded streams of every registered
//! lattice ([`InterleavedSource`]) at each lattice's own cadence and
//! distributes bit-packed [`SyndromePacket`]s
//! across *per-worker* lock-free [`SpmcRing`]s, enforcing each lattice's
//! own QoS contract at the push site: its effective push policy
//! ([`MachineConfig::policy_for`]) and its outstanding-round budget
//! ([`LatticeSpec::queue_budget`]), so a `Drop` patch sheds under overload
//! while a `Block` neighbour gets lossless backpressure on the same rings.
//! Each worker thread prepares one decoder per distinct (code distance,
//! factory) pair — per-lattice [`LatticeSpec::decoder`] overrides beside
//! the machine-wide [`DecoderFactory`] — then pops up to
//! [`MachineConfig::batch_size`] consecutive rounds from its own ring and
//! decodes them as one batch through the allocation-free
//! [`Decoder::decode_into`] hot path, routing every packet to its lattice's
//! prepared state by the `lattice_id` in the packet header; a worker whose
//! own ring runs dry *steals* from its neighbours' rings, so bursty
//! high-weight rounds cannot head-of-line-block the pool.  Everything
//! observable — queue depth, backlog, decode latency, shed rounds, steal
//! and batch counts, throughput — flows through the shared
//! [`RuntimeCounters`] (aggregate *and* per lattice) and into the final
//! report, whose headline compares measured backlog growth against the
//! paper's closed-form
//! [`BacklogModel`](nisqplus_system::backlog::BacklogModel), per lattice
//! and for the machine as a whole.  Shed rounds stay accounted for end to
//! end: they are fed into the per-lattice frame path as identity
//! corrections, carried in
//! [`MeasuredBacklog::shed`], and — when
//! [`MachineConfig::analyze_residuals`] is set — priced in measured logical
//! failures by replaying the seeded error stream.
//!
//! [`Decoder::prepare`]: nisqplus_decoders::Decoder::prepare
//! [`Decoder::decode_into`]: nisqplus_decoders::Decoder::decode_into

use crate::frame::ShardedPauliFrame;
use crate::lattice_set::{LatticeDecoder, LatticeSet, LatticeSpec};
use crate::packet::{PacketCodec, SyndromePacket};
use crate::queue::SpmcRing;
use crate::source::{InterleavedSource, NoiseSpec, SyndromeSource};
use crate::telemetry::{
    DepthSample, LatencyProfile, LatticeReport, ResidualReport, RuntimeCounters, RuntimeReport,
};
use nisqplus_decoders::traits::{DecoderFactory, DynDecoder};
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::lattice::Sector;
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_qec::QecError;
use nisqplus_sim::timing::CycleTimeConverter;
use nisqplus_system::backlog::{BacklogComparison, MeasuredBacklog};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// What the producer does when the ring buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushPolicy {
    /// Spin (counting [`backpressure_spins`](crate::telemetry::CounterSnapshot::backpressure_spins))
    /// until a worker frees a slot.  No round is ever lost, so the backlog
    /// measured by the run is exact — this is the policy the backlog
    /// experiments use, with a ring deep enough to hold the whole backlog.
    Block,
    /// Drop the packet (counting
    /// [`dropped`](crate::telemetry::CounterSnapshot::dropped)) and move on,
    /// as a load-shedding hardware front-end would.
    Drop,
}

/// Configuration of a single-lattice streaming run.
///
/// This is the ergonomic front door for the common one-patch experiment; it
/// converts into a one-entry [`MachineConfig`], which is what the engine
/// actually runs.  Use [`MachineConfig`] directly to serve several logical
/// qubits at once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Surface-code distance of the streamed lattice.
    pub distance: usize,
    /// The stochastic error channel driving the stream.
    pub noise: NoiseSpec,
    /// Seed of the syndrome stream (same seed, same stream — see
    /// [`crate::source::SyndromeSource`]).
    pub seed: u64,
    /// Number of syndrome-generation rounds to stream.
    pub rounds: u64,
    /// Number of decoder worker threads.
    pub workers: usize,
    /// Syndrome-generation period in decoder clock cycles; mapped to
    /// nanoseconds through [`RuntimeConfig::cycle_time`].  `0` disables
    /// pacing: the producer generates as fast as the CPU allows (useful for
    /// deterministic equivalence tests and throughput benchmarks).
    pub cadence_cycles: usize,
    /// Converts [`RuntimeConfig::cadence_cycles`] into wall-clock
    /// nanoseconds (`nisqplus-sim`'s cycle→ns mapping).
    pub cycle_time: CycleTimeConverter,
    /// Total ring-buffer capacity in packets, split evenly across the
    /// per-worker rings (each ring holds `ceil(queue_capacity / workers)`
    /// packets).  For backlog experiments with [`PushPolicy::Block`], size
    /// this above the expected final backlog so the producer never stalls.
    pub queue_capacity: usize,
    /// Maximum number of consecutive rounds a worker pops from a ring and
    /// decodes as one batch, amortizing per-packet overhead (ring pop/steal
    /// scans, shared counter updates) across the window.  Latency telemetry
    /// stays per-packet (timestamps are chained inside the batch).  `1`
    /// reproduces the original packet-at-a-time behaviour; corrections are
    /// byte-identical for every value because rounds remain independent
    /// decoding problems.
    pub batch_size: usize,
    /// Full-queue policy.
    pub push_policy: PushPolicy,
    /// Upper bound on the number of [`DepthSample`]s kept on the timeline
    /// (the producer down-samples to roughly this many points).
    pub max_depth_samples: usize,
    /// When `true`, every worker keeps the per-round corrections it
    /// committed, and [`RuntimeOutcome::corrections`] returns them sorted by
    /// `(lattice, round)` — the hook the stream-versus-batch equivalence
    /// tests use.
    pub record_corrections: bool,
    /// When `true`, the engine replays the seeded error stream at the end of
    /// the run and classifies every round's residual (shed rounds count as
    /// identity corrections), filling
    /// [`LatticeReport::residual`](crate::telemetry::LatticeReport::residual)
    /// — the measured logical cost of shedding versus backpressure.
    pub analyze_residuals: bool,
}

impl RuntimeConfig {
    /// The paper's 400 ns syndrome-generation period expressed in decoder
    /// clock cycles at the synthesized module latency (162.72 ps, Table III):
    /// `2458 * 162.72 ps ≈ 400 ns`.
    pub const PAPER_CADENCE_CYCLES: usize = 2458;

    /// Default batched-window size: small enough to keep per-round latency
    /// telemetry meaningful, large enough to amortize per-packet overhead.
    pub const DEFAULT_BATCH_SIZE: usize = 4;

    /// A paper-shaped default: pure dephasing at 3%, one round per 400 ns,
    /// two workers, a 4096-packet ring with blocking backpressure, 4-round
    /// decode windows.
    #[must_use]
    pub fn new(distance: usize) -> Self {
        RuntimeConfig {
            distance,
            noise: NoiseSpec::PureDephasing { p: 0.03 },
            seed: 2020,
            rounds: 10_000,
            workers: 2,
            cadence_cycles: Self::PAPER_CADENCE_CYCLES,
            cycle_time: CycleTimeConverter::paper_reference(),
            queue_capacity: 4096,
            batch_size: Self::DEFAULT_BATCH_SIZE,
            push_policy: PushPolicy::Block,
            max_depth_samples: 256,
            record_corrections: false,
            analyze_residuals: false,
        }
    }

    /// The syndrome-generation period in nanoseconds (`0.0` when pacing is
    /// disabled).
    #[must_use]
    pub fn cadence_ns(&self) -> f64 {
        self.cycle_time.cycles_to_ns(self.cadence_cycles)
    }
}

impl From<RuntimeConfig> for MachineConfig {
    /// A single-lattice run is a one-entry machine.
    fn from(config: RuntimeConfig) -> Self {
        MachineConfig {
            lattices: vec![LatticeSpec {
                distance: config.distance,
                noise: config.noise,
                seed: config.seed,
                rounds: config.rounds,
                cadence_cycles: config.cadence_cycles,
                push_policy: None,
                queue_budget: None,
                shed_slo: None,
                decoder: None,
            }],
            workers: config.workers,
            cycle_time: config.cycle_time,
            queue_capacity: config.queue_capacity,
            batch_size: config.batch_size,
            push_policy: config.push_policy,
            max_depth_samples: config.max_depth_samples,
            record_corrections: config.record_corrections,
            analyze_residuals: config.analyze_residuals,
        }
    }
}

/// Configuration of a multi-lattice streaming run: one engine serving a full
/// NISQ+ machine of N logical qubits.
///
/// Per-stream knobs (distance, noise, seed, rounds, cadence) live in each
/// [`LatticeSpec`]; the fields here configure the shared decoder fabric.
/// The field semantics match [`RuntimeConfig`]'s identically-named fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The lattices to serve, in lattice-id order (id = index).
    pub lattices: Vec<LatticeSpec>,
    /// Number of decoder worker threads shared by all lattices.
    pub workers: usize,
    /// Converts every lattice's `cadence_cycles` into wall-clock nanoseconds.
    pub cycle_time: CycleTimeConverter,
    /// Total ring-buffer capacity in packets, split evenly across the
    /// per-worker rings.
    pub queue_capacity: usize,
    /// Maximum rounds a worker decodes as one batch (see
    /// [`RuntimeConfig::batch_size`]).
    pub batch_size: usize,
    /// Full-queue policy.
    pub push_policy: PushPolicy,
    /// Upper bound on the number of [`DepthSample`]s kept on the timeline.
    pub max_depth_samples: usize,
    /// When `true`, per-round corrections are kept, sorted by
    /// `(lattice, round)`.
    pub record_corrections: bool,
    /// When `true`, the engine replays every lattice's seeded error stream
    /// at the end of the run and classifies each round's residual (shed
    /// rounds count as identity corrections), filling
    /// [`LatticeReport::residual`](crate::telemetry::LatticeReport::residual).
    pub analyze_residuals: bool,
}

impl MachineConfig {
    /// A machine of `distances.len()` lattices with otherwise
    /// [`RuntimeConfig::new`]-shaped defaults; lattice `i` gets distance
    /// `distances[i]` and seed `base_seed + i` so the streams are
    /// independent.
    ///
    /// # Panics
    ///
    /// Panics if `distances` is empty.
    #[must_use]
    pub fn new(distances: &[usize], base_seed: u64) -> Self {
        assert!(
            !distances.is_empty(),
            "a machine needs at least one lattice"
        );
        let template = RuntimeConfig::new(distances[0]);
        MachineConfig {
            lattices: distances
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut spec = LatticeSpec::new(d);
                    spec.seed = base_seed + i as u64;
                    spec
                })
                .collect(),
            workers: template.workers,
            cycle_time: template.cycle_time,
            queue_capacity: template.queue_capacity,
            batch_size: template.batch_size,
            push_policy: template.push_policy,
            max_depth_samples: template.max_depth_samples,
            record_corrections: template.record_corrections,
            analyze_residuals: template.analyze_residuals,
        }
    }

    /// The push policy `spec` runs under: its own override, or this
    /// machine's [`MachineConfig::push_policy`] when it has none.
    #[must_use]
    pub fn policy_for(&self, spec: &LatticeSpec) -> PushPolicy {
        spec.push_policy.unwrap_or(self.push_policy)
    }

    /// The nominal *aggregate* inter-arrival time across the machine, in
    /// nanoseconds per round: `1 / Σ 1/cadence_i`.  Returns `0.0` if any
    /// lattice is unpaced (the aggregate arrival rate is then CPU-bound).
    #[must_use]
    pub fn aggregate_cadence_ns(&self) -> f64 {
        let mut rate_per_ns = 0.0f64;
        for spec in &self.lattices {
            let cadence = self.cycle_time.cycles_to_ns(spec.cadence_cycles);
            if cadence <= 0.0 {
                return 0.0;
            }
            rate_per_ns += 1.0 / cadence;
        }
        if rate_per_ns > 0.0 {
            1.0 / rate_per_ns
        } else {
            0.0
        }
    }
}

/// One round's committed correction, kept when
/// [`MachineConfig::record_corrections`] is set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundCorrection {
    /// Id of the lattice the correction belongs to.
    pub lattice_id: u32,
    /// The syndrome-generation round (within that lattice's stream) the
    /// correction belongs to.
    pub round: u64,
    /// The composed X- and Z-sector correction committed to the frame.
    pub correction: PauliString,
}

/// Everything a streaming run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutcome {
    /// The telemetry report (counters, timelines, latencies, per-lattice
    /// breakdown, model comparisons).
    pub report: RuntimeReport,
    /// One sharded Pauli frame per lattice, indexed by lattice id; each
    /// holds the per-worker shards and their merge for that lattice.
    pub frames: Vec<ShardedPauliFrame>,
    /// Per-round corrections sorted by `(lattice_id, round)`; empty unless
    /// [`MachineConfig::record_corrections`] was set.
    pub corrections: Vec<RoundCorrection>,
}

impl RuntimeOutcome {
    /// The sharded frame of lattice 0 — the whole machine for single-lattice
    /// runs.
    #[must_use]
    pub fn frame(&self) -> &ShardedPauliFrame {
        &self.frames[0]
    }

    /// The sharded frame of one lattice.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn frame_for(&self, lattice_id: usize) -> &ShardedPauliFrame {
        &self.frames[lattice_id]
    }
}

/// Per-lattice generation statistics tracked by the producer.
#[derive(Debug, Clone, Copy, Default)]
struct LatticeGenStats {
    /// Elapsed nanoseconds at this lattice's last emission.
    gen_elapsed_ns: f64,
    /// This lattice's backlog at the instant its generation stopped.
    final_backlog: u64,
}

/// One lattice's slice of a worker's output.
struct WorkerLatticeOutput {
    frame: PauliFrame,
    decode_ns: Vec<f64>,
    total_ns: Vec<f64>,
}

/// What one worker thread hands back when the stream ends.
struct WorkerOutput {
    /// The name of the decoder serving each lattice, in lattice-id order
    /// (per-lattice overrides may differ from the machine-wide factory).
    lattice_decoders: Vec<String>,
    per_lattice: Vec<WorkerLatticeOutput>,
    corrections: Vec<RoundCorrection>,
}

/// The streaming decode engine.
///
/// ```rust
/// use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
/// use nisqplus_runtime::{RuntimeConfig, StreamingEngine};
///
/// let mut config = RuntimeConfig::new(3);
/// config.rounds = 64;
/// config.workers = 1;
/// config.cadence_cycles = 0; // un-paced: stream as fast as possible
/// let engine = StreamingEngine::new(config).unwrap();
/// let outcome = engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
/// assert_eq!(outcome.report.counters.decoded, 64);
/// ```
///
/// Serving several logical qubits at once — one engine, one worker pool,
/// per-lattice telemetry:
///
/// ```rust
/// use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
/// use nisqplus_runtime::{MachineConfig, StreamingEngine};
///
/// let mut config = MachineConfig::new(&[3, 5, 3], 7);
/// for spec in &mut config.lattices {
///     spec.rounds = 32;
///     spec.cadence_cycles = 0;
/// }
/// config.workers = 2;
/// let engine = StreamingEngine::with_machine(config).unwrap();
/// let outcome = engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
/// assert_eq!(outcome.report.num_lattices, 3);
/// assert_eq!(outcome.report.counters.decoded, 96);
/// assert_eq!(outcome.report.lattices[1].counters.decoded, 32);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    config: MachineConfig,
    set: Arc<LatticeSet>,
}

impl StreamingEngine {
    /// Validates a single-lattice configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if the distance is invalid or the noise
    /// probability is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds`, `workers`, `queue_capacity` or `batch_size` is
    /// zero.
    pub fn new(config: RuntimeConfig) -> Result<Self, QecError> {
        Self::with_machine(config.into())
    }

    /// Validates a multi-lattice configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if any lattice distance is invalid or any
    /// noise probability is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the lattice list is empty, any lattice streams zero rounds,
    /// or `workers`, `queue_capacity` or `batch_size` is zero.
    pub fn with_machine(config: MachineConfig) -> Result<Self, QecError> {
        assert!(config.workers > 0, "worker pool needs at least one worker");
        assert!(config.queue_capacity > 0, "ring needs at least one slot");
        assert!(
            config.batch_size > 0,
            "batch window needs at least one round"
        );
        let set = Arc::new(LatticeSet::new(config.lattices.clone())?);
        // Surface configuration errors now rather than inside the producer
        // thread: building a throwaway source validates every noise spec.
        let _ = InterleavedSource::new(&set, &config.cycle_time)?;
        Ok(StreamingEngine { config, set })
    }

    /// The run configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The registry of lattices being served.
    #[must_use]
    pub fn lattice_set(&self) -> &Arc<LatticeSet> {
        &self.set
    }

    /// The lattice registered under id 0 — the whole machine for engines
    /// built from a single-lattice [`RuntimeConfig`].
    #[must_use]
    pub fn lattice(&self) -> &Arc<nisqplus_qec::lattice::Lattice> {
        self.set.lattice(0)
    }

    /// Streams every lattice's configured rounds through the worker pool and
    /// reports the telemetry.
    ///
    /// The calling thread becomes the producer; `config.workers` decoder
    /// threads are spawned for the duration of the call.  Returns once every
    /// generated round has been decoded (or dropped) and all workers have
    /// exited.
    #[must_use]
    pub fn run(&self, factory: &dyn DecoderFactory) -> RuntimeOutcome {
        let config = &self.config;
        let set = &self.set;
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        // One ring per worker: the producer spreads rounds across them
        // and workers steal from each other when their own ring runs dry.
        let per_ring_capacity = config.queue_capacity.div_ceil(config.workers);
        let rings: Vec<SpmcRing> = (0..config.workers)
            .map(|_| SpmcRing::new(per_ring_capacity, codec.words_per_packet()))
            .collect();
        let counters = RuntimeCounters::with_lattices(set.len());
        let done = AtomicBool::new(false);
        let epoch = Instant::now();

        let mut depth_timeline = Vec::new();
        let mut generation_elapsed_ns = 0.0f64;
        let mut final_backlog = 0u64;
        let mut lattice_stats = vec![LatticeGenStats::default(); set.len()];
        let mut lattice_shed: Vec<Vec<u64>> = vec![Vec::new(); set.len()];

        let worker_outputs: Vec<WorkerOutput> = thread::scope(|s| {
            let handles: Vec<_> = (0..config.workers)
                .map(|worker_id| {
                    let rings = &rings;
                    let codec = &codec;
                    let counters = &counters;
                    let done = &done;
                    s.spawn(move || {
                        run_worker(WorkerContext {
                            worker_id,
                            set,
                            codec,
                            rings,
                            counters,
                            done,
                            epoch,
                            factory,
                            // The residual analysis replays corrections per
                            // round, so it needs them recorded too.
                            record_corrections: config.record_corrections
                                || config.analyze_residuals,
                            batch_size: config.batch_size,
                        })
                    })
                })
                .collect();

            self.run_producer(
                &codec,
                &rings,
                &counters,
                epoch,
                &mut depth_timeline,
                &mut generation_elapsed_ns,
                &mut final_backlog,
                &mut lattice_stats,
                &mut lattice_shed,
            );
            done.store(true, Ordering::Release);

            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let elapsed_s = epoch.elapsed().as_secs_f64();
        self.assemble_outcome(
            worker_outputs,
            depth_timeline,
            generation_elapsed_ns,
            final_backlog,
            lattice_stats,
            lattice_shed,
            elapsed_s,
            &counters,
        )
    }

    /// The producer loop: paced interleaved generation, bit-packing, ring
    /// placement under each lattice's own push policy and queue budget,
    /// sampling.
    #[allow(clippy::too_many_arguments)]
    fn run_producer(
        &self,
        codec: &PacketCodec,
        rings: &[SpmcRing],
        counters: &RuntimeCounters,
        epoch: Instant,
        depth_timeline: &mut Vec<DepthSample>,
        generation_elapsed_ns: &mut f64,
        final_backlog: &mut u64,
        lattice_stats: &mut [LatticeGenStats],
        lattice_shed: &mut [Vec<u64>],
    ) {
        let config = &self.config;
        let mut source = InterleavedSource::new(&self.set, &config.cycle_time)
            .expect("config validated in StreamingEngine::with_machine");
        let total_rounds = self.set.total_rounds();
        let sample_every = (total_rounds / config.max_depth_samples.max(1) as u64).max(1);
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut emitted_total = 0u64;
        // Per-lattice QoS resolved once, outside the hot loop.
        let qos: Vec<(PushPolicy, Option<u64>)> = self
            .set
            .iter()
            .map(|(_, spec, _)| (config.policy_for(spec), spec.queue_budget.map(|b| b as u64)))
            .collect();

        while let Some(sourced) = source.next_round() {
            if sourced.due_ns > 0.0 {
                // Pace generation to the lattice's hardware cadence.
                // `yield_now` keeps the spin cooperative on machines with
                // fewer cores than threads; the *measured* inter-arrival time
                // (not the nominal cadence) is what feeds the model
                // comparison, so imprecise pacing degrades the experiment's
                // rate, never its honesty.
                let target_ns = sourced.due_ns as u128;
                while epoch.elapsed().as_nanos() < target_ns {
                    std::hint::spin_loop();
                    thread::yield_now();
                }
            }
            let lattice_id = sourced.lattice_id;
            let emitted_ns = epoch.elapsed().as_nanos() as u64;
            let packet =
                SyndromePacket::new(lattice_id, sourced.round, emitted_ns, &sourced.syndrome);
            codec.encode(&packet, &mut record);
            let lattice_counters = &counters.per_lattice[lattice_id as usize];
            counters.generated.fetch_add(1, Ordering::Relaxed);
            lattice_counters.generated.fetch_add(1, Ordering::Relaxed);
            // Spread placement over the pool, offset by lattice id so
            // co-cadenced lattices don't all land on the same ring;
            // stealing rebalances whatever placement gets wrong.  For a
            // single lattice this is the PR-3 round-robin exactly.
            let ring =
                &rings[((u64::from(lattice_id) + sourced.round) % rings.len() as u64) as usize];
            let (policy, budget) = qos[lattice_id as usize];
            match policy {
                PushPolicy::Block => {
                    // Two gates, both lossless: the lattice's own outstanding
                    // budget first, then a free ring slot.
                    if let Some(budget) = budget {
                        while lattice_counters.outstanding() >= budget {
                            counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                            lattice_counters
                                .backpressure_spins
                                .fetch_add(1, Ordering::Relaxed);
                            std::hint::spin_loop();
                            thread::yield_now();
                        }
                    }
                    while ring.try_push(&record).is_err() {
                        counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                        lattice_counters
                            .backpressure_spins
                            .fetch_add(1, Ordering::Relaxed);
                        std::hint::spin_loop();
                        thread::yield_now();
                    }
                    counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    lattice_counters.enqueued.fetch_add(1, Ordering::Relaxed);
                }
                PushPolicy::Drop => {
                    // Shed when the lattice is over its own budget *or* the
                    // shared ring has no room; a shed round is recorded so
                    // the frame path and the residual analysis can feed it
                    // an identity correction later.
                    let over_budget =
                        budget.is_some_and(|budget| lattice_counters.outstanding() >= budget);
                    if !over_budget && ring.try_push(&record).is_ok() {
                        counters.enqueued.fetch_add(1, Ordering::Relaxed);
                        lattice_counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    } else {
                        counters.dropped.fetch_add(1, Ordering::Relaxed);
                        lattice_counters.dropped.fetch_add(1, Ordering::Relaxed);
                        lattice_shed[lattice_id as usize].push(sourced.round);
                    }
                }
            }
            let stats = &mut lattice_stats[lattice_id as usize];
            // Reuse the emission timestamp: it is this round's generation
            // instant, and it spares a second clock read per round.
            stats.gen_elapsed_ns = emitted_ns as f64;
            if sourced.round + 1 == self.set.spec(lattice_id as usize).rounds {
                // This lattice's generation just stopped: its backlog at this
                // instant is what its per-lattice model comparison predicts.
                stats.final_backlog = lattice_counters.backlog();
            }
            if emitted_total % sample_every == 0 || emitted_total + 1 == total_rounds {
                depth_timeline.push(DepthSample {
                    round: emitted_total,
                    elapsed_ns: epoch.elapsed().as_nanos() as u64,
                    queue_depth: rings.iter().map(|r| r.len() as u64).sum(),
                    backlog: counters.backlog(),
                });
            }
            emitted_total += 1;
        }
        *generation_elapsed_ns = epoch.elapsed().as_nanos() as f64;
        // The backlog at the instant generation stops is the quantity the
        // closed-form model predicts (rounds keep arriving only while the
        // machine runs); the workers drain the remainder afterwards.
        *final_backlog = counters.backlog();
    }

    /// Folds producer and worker outputs into the final [`RuntimeOutcome`].
    #[allow(clippy::too_many_arguments)]
    fn assemble_outcome(
        &self,
        worker_outputs: Vec<WorkerOutput>,
        depth_timeline: Vec<DepthSample>,
        generation_elapsed_ns: f64,
        final_backlog: u64,
        lattice_stats: Vec<LatticeGenStats>,
        lattice_shed: Vec<Vec<u64>>,
        elapsed_s: f64,
        counters: &RuntimeCounters,
    ) -> RuntimeOutcome {
        let config = &self.config;
        let set = &self.set;
        let total_rounds = set.total_rounds();
        // Per-lattice decoder names (same on every worker — they build from
        // the same factories); the machine-level headline joins the distinct
        // names, so a heterogeneous machine reads e.g. "lookup+union-find".
        let lattice_decoder_names: Vec<String> = worker_outputs
            .first()
            .map(|o| o.lattice_decoders.clone())
            .unwrap_or_default();
        let mut distinct_names: Vec<&str> = Vec::new();
        for name in &lattice_decoder_names {
            if !distinct_names.contains(&name.as_str()) {
                distinct_names.push(name);
            }
        }
        let decoder_name = distinct_names.join("+");

        // Regroup the per-worker, per-lattice outputs by lattice.
        let mut per_lattice_decode_ns: Vec<Vec<f64>> = vec![Vec::new(); set.len()];
        let mut per_lattice_total_ns: Vec<Vec<f64>> = vec![Vec::new(); set.len()];
        let mut per_lattice_shards: Vec<Vec<PauliFrame>> = vec![Vec::new(); set.len()];
        let mut corrections = Vec::new();
        for output in worker_outputs {
            corrections.extend(output.corrections);
            for (lattice_id, lattice_output) in output.per_lattice.into_iter().enumerate() {
                per_lattice_decode_ns[lattice_id].extend(lattice_output.decode_ns);
                per_lattice_total_ns[lattice_id].extend(lattice_output.total_ns);
                per_lattice_shards[lattice_id].push(lattice_output.frame);
            }
        }
        corrections.sort_by_key(|c| (c.lattice_id, c.round));

        // Per-lattice reports and frames.
        let mut lattices = Vec::with_capacity(set.len());
        let mut frames = Vec::with_capacity(set.len());
        let mut decode_ns = Vec::new();
        let mut total_ns = Vec::new();
        for (lattice_id, spec, lattice) in set.iter() {
            let decode_latency = LatencyProfile::of(&per_lattice_decode_ns[lattice_id]);
            let total_latency = LatencyProfile::of(&per_lattice_total_ns[lattice_id]);
            let stats = &lattice_stats[lattice_id];
            let snapshot = counters.per_lattice[lattice_id].snapshot();
            let shed_rounds = &lattice_shed[lattice_id];
            debug_assert_eq!(shed_rounds.len() as u64, snapshot.dropped);
            let inter_arrival_ns = stats.gen_elapsed_ns / spec.rounds as f64;
            let measured = MeasuredBacklog {
                rounds: spec.rounds,
                final_backlog: stats.final_backlog,
                // Shed rounds are lost, not owed: they left the backlog the
                // moment they were dropped, so they are accounted here
                // explicitly instead of vanishing from the growth math.
                shed: snapshot.dropped,
                // Workers decode concurrently, so the aggregate service time
                // per round is the per-packet mean divided by the pool width
                // (an optimistic bound when other lattices compete for the
                // same pool; see the LatticeReport field docs).
                service_time_ns: decode_latency.summary.mean / config.workers as f64,
                inter_arrival_ns,
            };
            let comparison = BacklogComparison::against_model(&measured);
            let residual = if config.analyze_residuals {
                Some(analyze_lattice_residuals(
                    lattice_id,
                    spec,
                    lattice,
                    &corrections,
                    shed_rounds,
                ))
            } else {
                None
            };
            lattices.push(LatticeReport {
                lattice_id,
                distance: spec.distance,
                decoder: lattice_decoder_names
                    .get(lattice_id)
                    .cloned()
                    .unwrap_or_default(),
                push_policy: config.policy_for(spec),
                push_policy_overridden: spec.push_policy.is_some(),
                queue_budget: spec.queue_budget,
                shed_slo: spec.shed_slo,
                residual,
                rounds: spec.rounds,
                cadence_ns: config.cycle_time.cycles_to_ns(spec.cadence_cycles),
                inter_arrival_ns,
                counters: snapshot,
                final_backlog: stats.final_backlog,
                decode_latency,
                total_latency,
                measured,
                comparison,
            });
            // Shed rounds enter the frame path as identity corrections: the
            // merged Pauli string is unchanged (nothing was corrected), but
            // the frame's recorded-cycle count owns up to every generated
            // round, so `total_recorded == generated` under shedding too.
            let mut shards = std::mem::take(&mut per_lattice_shards[lattice_id]);
            if !shed_rounds.is_empty() {
                let mut shed_shard = PauliFrame::new(lattice.num_data());
                let identity = PauliString::identity(lattice.num_data());
                for _ in shed_rounds {
                    shed_shard.record(&identity);
                }
                shards.push(shed_shard);
            }
            frames.push(ShardedPauliFrame::from_shards(lattice.num_data(), shards));
            decode_ns.extend(std::mem::take(&mut per_lattice_decode_ns[lattice_id]));
            total_ns.extend(std::mem::take(&mut per_lattice_total_ns[lattice_id]));
        }
        if !config.record_corrections {
            // The corrections were only recorded to feed the residual
            // analysis; the caller did not ask for them.
            corrections.clear();
        }

        let decode_latency = LatencyProfile::of(&decode_ns);
        let total_latency = LatencyProfile::of(&total_ns);
        let inter_arrival_ns = generation_elapsed_ns / total_rounds as f64;
        let snapshot = counters.snapshot();
        let measured = MeasuredBacklog {
            rounds: total_rounds,
            final_backlog,
            shed: snapshot.dropped,
            // Workers decode concurrently, so the aggregate service time per
            // round is the per-packet mean divided by the pool width.
            service_time_ns: decode_latency.summary.mean / config.workers as f64,
            inter_arrival_ns,
        };
        let comparison = BacklogComparison::against_model(&measured);
        let throughput_per_s = if elapsed_s > 0.0 {
            snapshot.decoded as f64 / elapsed_s
        } else {
            0.0
        };
        let max_queue_depth = depth_timeline
            .iter()
            .map(|s| s.queue_depth)
            .max()
            .unwrap_or(0);

        RuntimeOutcome {
            report: RuntimeReport {
                decoder: decoder_name,
                num_lattices: set.len(),
                distances: set.distances(),
                workers: config.workers,
                batch_size: config.batch_size,
                rounds: total_rounds,
                cadence_ns: config.aggregate_cadence_ns(),
                inter_arrival_ns,
                elapsed_s,
                counters: snapshot,
                depth_timeline,
                max_queue_depth,
                final_backlog,
                throughput_per_s,
                decode_latency,
                total_latency,
                measured,
                comparison,
                lattices,
            },
            frames,
            corrections,
        }
    }
}

/// The end-of-run drop-policy error analysis for one lattice: replay the
/// lattice's seeded error stream and classify every round's residual against
/// the correction that was actually applied — the decoder's output for
/// decoded rounds, identity for shed rounds.
///
/// `corrections` is the run's full `(lattice, round)`-sorted correction list
/// and `shed_rounds` the producer's record of this lattice's dropped rounds;
/// together they cover every generated round exactly once.
fn analyze_lattice_residuals(
    lattice_id: usize,
    spec: &LatticeSpec,
    lattice: &Arc<nisqplus_qec::lattice::Lattice>,
    corrections: &[RoundCorrection],
    shed_rounds: &[u64],
) -> ResidualReport {
    let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed)
        .expect("noise validated in StreamingEngine::with_machine");
    let identity = PauliString::identity(lattice.num_data());
    let mut report = ResidualReport::default();
    let mut decoded = corrections
        .iter()
        .filter(|c| c.lattice_id as usize == lattice_id)
        .peekable();
    let mut shed = shed_rounds.iter().peekable();
    for round in 0..spec.rounds {
        let (error, _) = source.next_error_and_syndrome();
        if decoded.peek().is_some_and(|c| c.round == round) {
            let correction = &decoded.next().expect("peeked").correction;
            report.decoded.record(lattice, &error, correction);
        } else {
            debug_assert_eq!(
                shed.peek().copied().copied(),
                Some(round),
                "round neither decoded nor shed"
            );
            shed.next();
            report.shed.record(lattice, &error, &identity);
        }
    }
    report
}

/// Everything one worker thread needs, bundled to keep the spawn site tidy.
struct WorkerContext<'a> {
    worker_id: usize,
    set: &'a LatticeSet,
    codec: &'a PacketCodec,
    rings: &'a [SpmcRing],
    counters: &'a RuntimeCounters,
    done: &'a AtomicBool,
    epoch: Instant,
    factory: &'a dyn DecoderFactory,
    record_corrections: bool,
    batch_size: usize,
}

/// One lattice's reusable per-worker decode state: the prepared-decoder slot
/// plus the buffers the hot loop writes into.  Nothing here allocates in
/// steady state (for decoders with an allocation-free `decode_into`).
struct LatticeWorkerState {
    /// Index into the worker's per-distance decoder list.
    decoder_slot: usize,
    packet: SyndromePacket,
    syndrome: Syndrome,
    x_buf: PauliString,
    z_buf: PauliString,
    output: WorkerLatticeOutput,
}

/// One worker: pop a batch from the own ring (stealing from neighbours when
/// it runs dry), route each packet to its lattice's prepared state by the
/// header's `lattice_id`, decode both sectors through the prepared
/// allocation-free hot path, commit to the private per-lattice shard.
fn run_worker(ctx: WorkerContext<'_>) -> WorkerOutput {
    let WorkerContext {
        worker_id,
        set,
        codec,
        rings,
        counters,
        done,
        epoch,
        factory,
        record_corrections,
        batch_size,
    } = ctx;
    // One prepared decoder per distinct (code distance, factory): lattices
    // of equal distance share layout (LatticeSet interns them), so the
    // prepared sector graphs and scratch arenas are reused across them — but
    // only between lattices served by the *same* factory (the machine-wide
    // one, or a shared per-lattice override).
    let mut decoders: Vec<DynDecoder> = Vec::new();
    let mut lattice_decoders: Vec<String> = Vec::with_capacity(set.len());
    // (distance, factory identity, slot); None = the machine-wide factory.
    let mut slot_of: Vec<(usize, Option<usize>, usize)> = Vec::new();
    let mut states: Vec<LatticeWorkerState> = Vec::with_capacity(set.len());
    for (_, spec, lattice) in set.iter() {
        let factory_key = spec.decoder.as_ref().map(LatticeDecoder::key);
        let decoder_slot = match slot_of
            .iter()
            .find(|(d, k, _)| *d == spec.distance && *k == factory_key)
        {
            Some(&(_, _, slot)) => slot,
            None => {
                let mut decoder = match &spec.decoder {
                    Some(per_lattice) => per_lattice.build(),
                    None => factory.build(),
                };
                decoder.prepare(lattice);
                decoders.push(decoder);
                slot_of.push((spec.distance, factory_key, decoders.len() - 1));
                decoders.len() - 1
            }
        };
        lattice_decoders.push(decoders[decoder_slot].name().to_string());
        states.push(LatticeWorkerState {
            decoder_slot,
            packet: SyndromePacket::new(0, 0, 0, &Syndrome::new(lattice.num_ancillas())),
            syndrome: Syndrome::new(lattice.num_ancillas()),
            x_buf: PauliString::identity(lattice.num_data()),
            z_buf: PauliString::identity(lattice.num_data()),
            output: WorkerLatticeOutput {
                frame: PauliFrame::new(lattice.num_data()),
                decode_ns: Vec::new(),
                total_ns: Vec::new(),
            },
        });
    }
    // Reusable batch records, shared across lattices (records are sized for
    // the largest lattice of the set).
    let mut batch: Vec<Vec<u64>> = (0..batch_size)
        .map(|_| vec![0u64; codec.words_per_packet()])
        .collect();
    let mut corrections = Vec::new();
    loop {
        // ---- Fill a batch: own ring first, then steal ------------------
        let mut filled = 0usize;
        while filled < batch_size && rings[worker_id].try_pop(&mut batch[filled]) {
            filled += 1;
        }
        if filled == 0 && rings.len() > 1 {
            // Own ring dry: steal a batch from the first busy neighbour so a
            // burst of heavy rounds on one ring is drained by the whole pool.
            for offset in 1..rings.len() {
                let victim = (worker_id + offset) % rings.len();
                while filled < batch_size && rings[victim].try_pop(&mut batch[filled]) {
                    filled += 1;
                }
                if filled > 0 {
                    counters.stolen.fetch_add(filled as u64, Ordering::Relaxed);
                    break;
                }
            }
        }
        if filled == 0 {
            if done.load(Ordering::Acquire) && rings.iter().all(SpmcRing::is_empty) {
                return WorkerOutput {
                    lattice_decoders,
                    per_lattice: states.into_iter().map(|s| s.output).collect(),
                    corrections,
                };
            }
            counters.stall_polls.fetch_add(1, Ordering::Relaxed);
            std::hint::spin_loop();
            thread::yield_now();
            continue;
        }

        // ---- Decode the batch ------------------------------------------
        // Per-packet service time keeps its PR-2 meaning (the full
        // unpack-to-commit span of that round — what the backlog model's `f`
        // ratio is about): timestamps are chained, one clock read per
        // packet, so batching amortizes the pop/steal scans and counter
        // updates without flattening latency spikes into a batch mean.
        let mut prev = Instant::now();
        for record in &batch[..filled] {
            // Raw routing peek to pick the per-lattice buffers; the single
            // full header validation happens inside `try_decode_into`.
            let lattice_id = PacketCodec::peek_lattice_id(record) as usize;
            let state = &mut states[lattice_id];
            let decoder = &mut decoders[state.decoder_slot];
            let lattice = set.lattice(lattice_id);
            codec
                .try_decode_into(record, &mut state.packet)
                .expect("producer and workers share one codec");
            state.packet.syndrome.write_to_syndrome(&mut state.syndrome);
            decoder.decode_into(lattice, &state.syndrome, Sector::X, &mut state.x_buf);
            decoder.decode_into(lattice, &state.syndrome, Sector::Z, &mut state.z_buf);
            state.x_buf.compose_with(&state.z_buf);
            state.output.frame.record(&state.x_buf);
            if record_corrections {
                corrections.push(RoundCorrection {
                    lattice_id: state.packet.lattice_id,
                    round: state.packet.round,
                    correction: state.x_buf.clone(),
                });
            }
            let now = Instant::now();
            state
                .output
                .decode_ns
                .push(now.duration_since(prev).as_nanos() as f64);
            state.output.total_ns.push(
                (now.duration_since(epoch).as_nanos() as f64 - state.packet.emitted_ns as f64)
                    .max(0.0),
            );
            counters.per_lattice[lattice_id]
                .decoded
                .fetch_add(1, Ordering::Relaxed);
            prev = now;
        }
        counters.decoded.fetch_add(filled as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyndromeSource;
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};

    fn fast_config() -> RuntimeConfig {
        let mut config = RuntimeConfig::new(3);
        config.rounds = 200;
        config.workers = 2;
        config.cadence_cycles = 0;
        config.queue_capacity = 64;
        config
    }

    fn greedy_factory() -> impl DecoderFactory {
        || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
    }

    #[test]
    fn paper_default_cadence_is_400ns() {
        let config = RuntimeConfig::new(5);
        assert!(
            (config.cadence_ns() - 400.0).abs() < 0.5,
            "{}",
            config.cadence_ns()
        );
    }

    #[test]
    fn unpaced_config_has_zero_cadence() {
        let config = fast_config();
        assert_eq!(config.cadence_ns(), 0.0);
    }

    #[test]
    fn aggregate_cadence_combines_arrival_rates() {
        let mut config = MachineConfig::new(&[3, 3], 0);
        for spec in &mut config.lattices {
            spec.cadence_cycles = RuntimeConfig::PAPER_CADENCE_CYCLES;
        }
        // Two 400 ns streams arrive every 200 ns in aggregate.
        assert!((config.aggregate_cadence_ns() - 200.0).abs() < 0.5);
        config.lattices[0].cadence_cycles = 0;
        assert_eq!(config.aggregate_cadence_ns(), 0.0);
    }

    #[test]
    fn single_lattice_config_is_a_one_entry_machine() {
        let config = fast_config();
        let machine: MachineConfig = config.into();
        assert_eq!(machine.lattices.len(), 1);
        assert_eq!(machine.lattices[0].distance, 3);
        assert_eq!(machine.lattices[0].rounds, 200);
        assert_eq!(machine.workers, config.workers);
        assert_eq!(machine.aggregate_cadence_ns(), config.cadence_ns());
    }

    #[test]
    fn every_round_is_decoded_exactly_once() {
        let engine = StreamingEngine::new(fast_config()).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        assert_eq!(counters.generated, 200);
        assert_eq!(counters.enqueued, 200);
        assert_eq!(counters.decoded, 200);
        assert_eq!(counters.dropped, 0);
        assert_eq!(outcome.frame().total_recorded(), 200);
        assert_eq!(outcome.report.decode_latency.summary.count, 200);
        assert!(outcome.report.throughput_per_s > 0.0);
        assert!(!outcome.report.depth_timeline.is_empty());
        // Single lattice: the per-lattice breakdown is the whole report.
        assert_eq!(outcome.report.num_lattices, 1);
        assert_eq!(outcome.report.lattices.len(), 1);
        assert_eq!(outcome.report.lattices[0].counters.decoded, 200);
        assert_eq!(outcome.report.distances, vec![3]);
    }

    #[test]
    fn recorded_corrections_cover_every_round_in_order() {
        let mut config = fast_config();
        config.record_corrections = true;
        config.workers = 3;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let rounds: Vec<u64> = outcome.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..200).collect::<Vec<u64>>());
        assert!(outcome.corrections.iter().all(|c| c.lattice_id == 0));
    }

    #[test]
    fn drop_policy_sheds_load_on_a_tiny_ring() {
        let mut config = fast_config();
        config.queue_capacity = 2;
        config.workers = 1;
        config.rounds = 500;
        config.push_policy = PushPolicy::Drop;
        // Slow the workers enough that an un-paced producer overruns the ring.
        let factory = || {
            Box::new(crate::throttle::ThrottledDecoder::new(
                GreedyMatchingDecoder::new(),
                50_000,
            )) as DynDecoder
        };
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&factory);
        let counters = outcome.report.counters;
        assert_eq!(counters.generated, 500);
        assert_eq!(counters.enqueued + counters.dropped, 500);
        assert!(counters.dropped > 0, "tiny ring should overflow");
        assert_eq!(counters.decoded, counters.enqueued);
        // Dropped rounds are shed, not owed: the backlog when generation
        // stopped is at most what fit in the ring plus the packets in flight
        // inside the single worker, never the full overrun.
        assert!(outcome.report.final_backlog <= 4);
        // The per-lattice slice sees the same drops.
        let lattice = &outcome.report.lattices[0];
        assert_eq!(lattice.counters.dropped, counters.dropped);
        assert!(!lattice.queue_stayed_bounded());
    }

    /// Deterministic work stealing: worker 0's own ring is empty, every
    /// packet sits in worker 1's ring, and the producer is already done.
    /// Worker 0 must steal and decode all of them, counting each theft.
    #[test]
    fn starved_worker_steals_from_a_foreign_ring() {
        let mut spec = LatticeSpec::new(3);
        spec.rounds = 20;
        let set = LatticeSet::new(vec![spec]).unwrap();
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let rings = [
            SpmcRing::new(64, codec.words_per_packet()),
            SpmcRing::new(64, codec.words_per_packet()),
        ];
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut source = SyndromeSource::new(
            set.lattice(0).clone(),
            NoiseSpec::PureDephasing { p: 0.1 },
            3,
        )
        .unwrap();
        for round in 0..20u64 {
            let packet = SyndromePacket::new(0, round, 0, &source.next_syndrome());
            codec.encode(&packet, &mut record);
            rings[1].try_push(&record).unwrap();
        }
        let counters = RuntimeCounters::with_lattices(1);
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let output = run_worker(WorkerContext {
            worker_id: 0,
            set: &set,
            codec: &codec,
            rings: &rings,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            batch_size: 4,
        });
        let snap = counters.snapshot();
        assert_eq!(snap.decoded, 20);
        assert_eq!(snap.stolen, 20, "every packet was a steal");
        assert_eq!(snap.batches, 5, "20 packets in windows of 4");
        assert_eq!(output.per_lattice[0].frame.recorded_cycles(), 20);
        let rounds: Vec<u64> = output.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..20).collect::<Vec<u64>>());
        assert!(rings.iter().all(SpmcRing::is_empty));
    }

    /// A two-lattice worker routes each packet to its lattice's state: the
    /// d=3 and d=5 rounds land in separate frames with separate counters,
    /// even when interleaved in one ring.
    #[test]
    fn worker_routes_packets_by_lattice_id() {
        let mut spec3 = LatticeSpec::new(3);
        spec3.rounds = 6;
        spec3.seed = 1;
        let mut spec5 = LatticeSpec::new(5);
        spec5.rounds = 4;
        spec5.seed = 2;
        let set = LatticeSet::new(vec![spec3, spec5]).unwrap();
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let rings = [SpmcRing::new(64, codec.words_per_packet())];
        let mut record = vec![0u64; codec.words_per_packet()];
        for (lattice_id, rounds, seed) in [(0u32, 6u64, 1u64), (1, 4, 2)] {
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                NoiseSpec::PureDephasing { p: 0.1 },
                seed,
            )
            .unwrap();
            for round in 0..rounds {
                let packet = SyndromePacket::new(lattice_id, round, 0, &source.next_syndrome());
                codec.encode(&packet, &mut record);
                rings[0].try_push(&record).unwrap();
            }
        }
        let counters = RuntimeCounters::with_lattices(2);
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let output = run_worker(WorkerContext {
            worker_id: 0,
            set: &set,
            codec: &codec,
            rings: &rings,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            batch_size: 4,
        });
        assert_eq!(counters.snapshot().decoded, 10);
        assert_eq!(counters.per_lattice[0].snapshot().decoded, 6);
        assert_eq!(counters.per_lattice[1].snapshot().decoded, 4);
        assert_eq!(output.per_lattice[0].frame.recorded_cycles(), 6);
        assert_eq!(output.per_lattice[1].frame.recorded_cycles(), 4);
        assert_eq!(output.per_lattice[0].frame.len(), set.lattice(0).num_data());
        assert_eq!(output.per_lattice[1].frame.len(), set.lattice(1).num_data());
        assert_eq!(
            output
                .corrections
                .iter()
                .filter(|c| c.lattice_id == 1)
                .count(),
            4
        );
    }

    #[test]
    fn batched_windows_cover_every_round() {
        let mut config = fast_config();
        config.batch_size = 8;
        config.workers = 1;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        assert_eq!(counters.decoded, 200);
        assert_eq!(outcome.report.batch_size, 8);
        assert!(counters.batches >= 200 / 8);
        assert!(counters.batches <= 200);
        assert!(counters.mean_batch_fill() >= 1.0);
        assert_eq!(outcome.report.decode_latency.summary.count, 200);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_batch_size_rejected() {
        let mut config = fast_config();
        config.batch_size = 0;
        let _ = StreamingEngine::new(config);
    }

    #[test]
    fn invalid_noise_is_rejected_up_front() {
        let mut config = fast_config();
        config.noise = NoiseSpec::PureDephasing { p: 2.0 };
        assert!(StreamingEngine::new(config).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let mut config = fast_config();
        config.workers = 0;
        let _ = StreamingEngine::new(config);
    }

    #[test]
    #[should_panic(expected = "at least one lattice")]
    fn empty_machine_rejected() {
        let config = MachineConfig {
            lattices: Vec::new(),
            ..MachineConfig::new(&[3], 0)
        };
        let _ = StreamingEngine::with_machine(config);
    }
}
