//! The streaming engine: producer pacing, decoder worker pool, and the run
//! orchestration that turns a seeded syndrome stream into a
//! [`RuntimeReport`].
//!
//! One producer thread generates syndromes at a configured cadence and
//! round-robins bit-packed [`SyndromePacket`](crate::packet::SyndromePacket)s
//! across *per-worker* lock-free [`SpmcRing`](crate::queue::SpmcRing)s.  Each
//! worker thread prepares its decoder once ([`Decoder::prepare`]), then pops
//! up to [`RuntimeConfig::batch_size`] consecutive rounds from its own ring
//! and decodes them as one batch through the allocation-free
//! [`Decoder::decode_into`] hot path; a worker whose own ring runs dry
//! *steals* from its neighbours' rings, so bursty high-weight rounds cannot
//! head-of-line-block the pool.  Everything observable — queue depth,
//! backlog, decode latency, steal and batch counts, throughput — flows
//! through the shared [`RuntimeCounters`](crate::telemetry::RuntimeCounters)
//! and into the final report, whose headline is the measured backlog growth
//! compared against the paper's closed-form
//! [`BacklogModel`](nisqplus_system::backlog::BacklogModel).
//!
//! [`Decoder::prepare`]: nisqplus_decoders::Decoder::prepare
//! [`Decoder::decode_into`]: nisqplus_decoders::Decoder::decode_into

use crate::frame::ShardedPauliFrame;
use crate::packet::{PacketCodec, SyndromePacket};
use crate::queue::SpmcRing;
use crate::source::{NoiseSpec, SyndromeSource};
use crate::telemetry::{DepthSample, LatencyProfile, RuntimeCounters, RuntimeReport};
use nisqplus_decoders::traits::DecoderFactory;
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_qec::QecError;
use nisqplus_sim::timing::CycleTimeConverter;
use nisqplus_system::backlog::{BacklogComparison, MeasuredBacklog};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// What the producer does when the ring buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushPolicy {
    /// Spin (counting [`backpressure_spins`](crate::telemetry::CounterSnapshot::backpressure_spins))
    /// until a worker frees a slot.  No round is ever lost, so the backlog
    /// measured by the run is exact — this is the policy the backlog
    /// experiments use, with a ring deep enough to hold the whole backlog.
    Block,
    /// Drop the packet (counting
    /// [`dropped`](crate::telemetry::CounterSnapshot::dropped)) and move on,
    /// as a load-shedding hardware front-end would.
    Drop,
}

/// Configuration of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Surface-code distance of the streamed lattice.
    pub distance: usize,
    /// The stochastic error channel driving the stream.
    pub noise: NoiseSpec,
    /// Seed of the syndrome stream (same seed, same stream — see
    /// [`SyndromeSource`]).
    pub seed: u64,
    /// Number of syndrome-generation rounds to stream.
    pub rounds: u64,
    /// Number of decoder worker threads.
    pub workers: usize,
    /// Syndrome-generation period in decoder clock cycles; mapped to
    /// nanoseconds through [`RuntimeConfig::cycle_time`].  `0` disables
    /// pacing: the producer generates as fast as the CPU allows (useful for
    /// deterministic equivalence tests and throughput benchmarks).
    pub cadence_cycles: usize,
    /// Converts [`RuntimeConfig::cadence_cycles`] into wall-clock
    /// nanoseconds (`nisqplus-sim`'s cycle→ns mapping).
    pub cycle_time: CycleTimeConverter,
    /// Total ring-buffer capacity in packets, split evenly across the
    /// per-worker rings (each ring holds `ceil(queue_capacity / workers)`
    /// packets).  For backlog experiments with [`PushPolicy::Block`], size
    /// this above the expected final backlog so the producer never stalls.
    pub queue_capacity: usize,
    /// Maximum number of consecutive rounds a worker pops from a ring and
    /// decodes as one batch, amortizing per-packet overhead (ring pop/steal
    /// scans, shared counter updates) across the window.  Latency telemetry
    /// stays per-packet (timestamps are chained inside the batch).  `1`
    /// reproduces the original packet-at-a-time behaviour; corrections are
    /// byte-identical for every value because rounds remain independent
    /// decoding problems.
    pub batch_size: usize,
    /// Full-queue policy.
    pub push_policy: PushPolicy,
    /// Upper bound on the number of [`DepthSample`]s kept on the timeline
    /// (the producer down-samples to roughly this many points).
    pub max_depth_samples: usize,
    /// When `true`, every worker keeps the per-round corrections it
    /// committed, and [`RuntimeOutcome::corrections`] returns them sorted by
    /// round — the hook the stream-versus-batch equivalence tests use.
    pub record_corrections: bool,
}

impl RuntimeConfig {
    /// The paper's 400 ns syndrome-generation period expressed in decoder
    /// clock cycles at the synthesized module latency (162.72 ps, Table III):
    /// `2458 * 162.72 ps ≈ 400 ns`.
    pub const PAPER_CADENCE_CYCLES: usize = 2458;

    /// Default batched-window size: small enough to keep per-round latency
    /// telemetry meaningful, large enough to amortize per-packet overhead.
    pub const DEFAULT_BATCH_SIZE: usize = 4;

    /// A paper-shaped default: pure dephasing at 3%, one round per 400 ns,
    /// two workers, a 4096-packet ring with blocking backpressure, 4-round
    /// decode windows.
    #[must_use]
    pub fn new(distance: usize) -> Self {
        RuntimeConfig {
            distance,
            noise: NoiseSpec::PureDephasing { p: 0.03 },
            seed: 2020,
            rounds: 10_000,
            workers: 2,
            cadence_cycles: Self::PAPER_CADENCE_CYCLES,
            cycle_time: CycleTimeConverter::paper_reference(),
            queue_capacity: 4096,
            batch_size: Self::DEFAULT_BATCH_SIZE,
            push_policy: PushPolicy::Block,
            max_depth_samples: 256,
            record_corrections: false,
        }
    }

    /// The syndrome-generation period in nanoseconds (`0.0` when pacing is
    /// disabled).
    #[must_use]
    pub fn cadence_ns(&self) -> f64 {
        self.cycle_time.cycles_to_ns(self.cadence_cycles)
    }
}

/// One round's committed correction, kept when
/// [`RuntimeConfig::record_corrections`] is set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundCorrection {
    /// The syndrome-generation round the correction belongs to.
    pub round: u64,
    /// The composed X- and Z-sector correction committed to the frame.
    pub correction: PauliString,
}

/// Everything a streaming run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutcome {
    /// The telemetry report (counters, timelines, latencies, model
    /// comparison).
    pub report: RuntimeReport,
    /// The per-worker Pauli-frame shards and their merge.
    pub frame: ShardedPauliFrame,
    /// Per-round corrections sorted by round; empty unless
    /// [`RuntimeConfig::record_corrections`] was set.
    pub corrections: Vec<RoundCorrection>,
}

/// What one worker thread hands back when the stream ends.
struct WorkerOutput {
    decoder_name: String,
    frame: PauliFrame,
    decode_ns: Vec<f64>,
    total_ns: Vec<f64>,
    corrections: Vec<RoundCorrection>,
}

/// The streaming decode engine.
///
/// ```rust
/// use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
/// use nisqplus_runtime::{RuntimeConfig, StreamingEngine};
///
/// let mut config = RuntimeConfig::new(3);
/// config.rounds = 64;
/// config.workers = 1;
/// config.cadence_cycles = 0; // un-paced: stream as fast as possible
/// let engine = StreamingEngine::new(config).unwrap();
/// let outcome = engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
/// assert_eq!(outcome.report.counters.decoded, 64);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    config: RuntimeConfig,
    lattice: Arc<Lattice>,
}

impl StreamingEngine {
    /// Validates the configuration and builds the lattice.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if the distance is invalid or the noise
    /// probability is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds`, `workers` or `queue_capacity` is zero.
    pub fn new(config: RuntimeConfig) -> Result<Self, QecError> {
        assert!(config.rounds > 0, "stream needs at least one round");
        assert!(config.workers > 0, "worker pool needs at least one worker");
        assert!(config.queue_capacity > 0, "ring needs at least one slot");
        assert!(
            config.batch_size > 0,
            "batch window needs at least one round"
        );
        let lattice = Arc::new(Lattice::new(config.distance)?);
        // Surface configuration errors now rather than inside the producer
        // thread: building a throwaway source validates the noise spec.
        let _ = SyndromeSource::new(lattice.clone(), config.noise, config.seed)?;
        Ok(StreamingEngine { config, lattice })
    }

    /// The run configuration.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The lattice being streamed.
    #[must_use]
    pub fn lattice(&self) -> &Arc<Lattice> {
        &self.lattice
    }

    /// Streams the configured number of rounds through the worker pool and
    /// reports the telemetry.
    ///
    /// The calling thread becomes the producer; `config.workers` decoder
    /// threads are spawned for the duration of the call.  Returns once every
    /// generated round has been decoded (or dropped) and all workers have
    /// exited.
    #[must_use]
    pub fn run(&self, factory: &dyn DecoderFactory) -> RuntimeOutcome {
        let config = &self.config;
        let lattice = &self.lattice;
        let codec = PacketCodec::new(lattice.num_ancillas());
        // One ring per worker: the producer round-robins rounds across them
        // and workers steal from each other when their own ring runs dry.
        let per_ring_capacity = config.queue_capacity.div_ceil(config.workers);
        let rings: Vec<SpmcRing> = (0..config.workers)
            .map(|_| SpmcRing::new(per_ring_capacity, codec.words_per_packet()))
            .collect();
        let counters = RuntimeCounters::default();
        let done = AtomicBool::new(false);
        let epoch = Instant::now();

        let mut depth_timeline = Vec::new();
        let mut generation_elapsed_ns = 0.0f64;
        let mut final_backlog = 0u64;

        let worker_outputs: Vec<WorkerOutput> = thread::scope(|s| {
            let handles: Vec<_> = (0..config.workers)
                .map(|worker_id| {
                    let rings = &rings;
                    let codec = &codec;
                    let counters = &counters;
                    let done = &done;
                    s.spawn(move || {
                        run_worker(WorkerContext {
                            worker_id,
                            lattice,
                            codec,
                            rings,
                            counters,
                            done,
                            epoch,
                            factory,
                            record_corrections: config.record_corrections,
                            batch_size: config.batch_size,
                        })
                    })
                })
                .collect();

            self.run_producer(
                &codec,
                &rings,
                &counters,
                epoch,
                &mut depth_timeline,
                &mut generation_elapsed_ns,
                &mut final_backlog,
            );
            done.store(true, Ordering::Release);

            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let elapsed_s = epoch.elapsed().as_secs_f64();
        self.assemble_outcome(
            worker_outputs,
            depth_timeline,
            generation_elapsed_ns,
            final_backlog,
            elapsed_s,
            &counters,
        )
    }

    /// The producer loop: paced generation, bit-packing, round-robin pushing
    /// across the per-worker rings, sampling.
    #[allow(clippy::too_many_arguments)]
    fn run_producer(
        &self,
        codec: &PacketCodec,
        rings: &[SpmcRing],
        counters: &RuntimeCounters,
        epoch: Instant,
        depth_timeline: &mut Vec<DepthSample>,
        generation_elapsed_ns: &mut f64,
        final_backlog: &mut u64,
    ) {
        let config = &self.config;
        let mut source = SyndromeSource::new(self.lattice.clone(), config.noise, config.seed)
            .expect("config validated in StreamingEngine::new");
        let cadence_ns = config.cadence_ns();
        let sample_every = (config.rounds / config.max_depth_samples.max(1) as u64).max(1);
        let mut record = vec![0u64; codec.words_per_packet()];

        for round in 0..config.rounds {
            if cadence_ns > 0.0 {
                // Pace generation to the hardware cadence.  `yield_now` keeps
                // the spin cooperative on machines with fewer cores than
                // threads; the *measured* inter-arrival time (not the nominal
                // cadence) is what feeds the model comparison, so imprecise
                // pacing degrades the experiment's rate, never its honesty.
                let target_ns = (round as f64 * cadence_ns) as u128;
                while epoch.elapsed().as_nanos() < target_ns {
                    std::hint::spin_loop();
                    thread::yield_now();
                }
            }
            let syndrome = source.next_syndrome();
            let emitted_ns = epoch.elapsed().as_nanos() as u64;
            let packet = SyndromePacket::new(round, emitted_ns, &syndrome);
            codec.encode(&packet, &mut record);
            counters.generated.fetch_add(1, Ordering::Relaxed);
            // Round-robin placement keeps consecutive rounds spread across
            // the pool; stealing rebalances whatever placement gets wrong.
            let ring = &rings[(round % rings.len() as u64) as usize];
            match config.push_policy {
                PushPolicy::Block => {
                    while ring.try_push(&record).is_err() {
                        counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                        std::hint::spin_loop();
                        thread::yield_now();
                    }
                    counters.enqueued.fetch_add(1, Ordering::Relaxed);
                }
                PushPolicy::Drop => {
                    if ring.try_push(&record).is_ok() {
                        counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    } else {
                        counters.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if round % sample_every == 0 || round + 1 == config.rounds {
                depth_timeline.push(DepthSample {
                    round,
                    elapsed_ns: epoch.elapsed().as_nanos() as u64,
                    queue_depth: rings.iter().map(|r| r.len() as u64).sum(),
                    backlog: counters.backlog(),
                });
            }
        }
        *generation_elapsed_ns = epoch.elapsed().as_nanos() as f64;
        // The backlog at the instant generation stops is the quantity the
        // closed-form model predicts (rounds keep arriving only while the
        // machine runs); the workers drain the remainder afterwards.
        *final_backlog = counters.backlog();
    }

    /// Folds producer and worker outputs into the final [`RuntimeOutcome`].
    #[allow(clippy::too_many_arguments)]
    fn assemble_outcome(
        &self,
        worker_outputs: Vec<WorkerOutput>,
        depth_timeline: Vec<DepthSample>,
        generation_elapsed_ns: f64,
        final_backlog: u64,
        elapsed_s: f64,
        counters: &RuntimeCounters,
    ) -> RuntimeOutcome {
        let config = &self.config;
        let mut decode_ns = Vec::new();
        let mut total_ns = Vec::new();
        let mut corrections = Vec::new();
        let mut shards = Vec::with_capacity(worker_outputs.len());
        let decoder_name = worker_outputs
            .first()
            .map(|o| o.decoder_name.clone())
            .unwrap_or_default();
        for output in worker_outputs {
            decode_ns.extend(output.decode_ns);
            total_ns.extend(output.total_ns);
            corrections.extend(output.corrections);
            shards.push(output.frame);
        }
        corrections.sort_by_key(|c| c.round);

        let decode_latency = LatencyProfile::of(&decode_ns);
        let total_latency = LatencyProfile::of(&total_ns);
        let inter_arrival_ns = generation_elapsed_ns / config.rounds as f64;
        let measured = MeasuredBacklog {
            rounds: config.rounds,
            final_backlog,
            // Workers decode concurrently, so the aggregate service time per
            // round is the per-packet mean divided by the pool width.
            service_time_ns: decode_latency.summary.mean / config.workers as f64,
            inter_arrival_ns,
        };
        let comparison = BacklogComparison::against_model(&measured);
        let snapshot = counters.snapshot();
        let throughput_per_s = if elapsed_s > 0.0 {
            snapshot.decoded as f64 / elapsed_s
        } else {
            0.0
        };
        let max_queue_depth = depth_timeline
            .iter()
            .map(|s| s.queue_depth)
            .max()
            .unwrap_or(0);

        RuntimeOutcome {
            report: RuntimeReport {
                decoder: decoder_name,
                distance: config.distance,
                workers: config.workers,
                batch_size: config.batch_size,
                rounds: config.rounds,
                cadence_ns: config.cadence_ns(),
                inter_arrival_ns,
                elapsed_s,
                counters: snapshot,
                depth_timeline,
                max_queue_depth,
                final_backlog,
                throughput_per_s,
                decode_latency,
                total_latency,
                measured,
                comparison,
            },
            frame: ShardedPauliFrame::from_shards(self.lattice.num_data(), shards),
            corrections,
        }
    }
}

/// Everything one worker thread needs, bundled to keep the spawn site tidy.
struct WorkerContext<'a> {
    worker_id: usize,
    lattice: &'a Lattice,
    codec: &'a PacketCodec,
    rings: &'a [SpmcRing],
    counters: &'a RuntimeCounters,
    done: &'a AtomicBool,
    epoch: Instant,
    factory: &'a dyn DecoderFactory,
    record_corrections: bool,
    batch_size: usize,
}

/// One worker: pop a batch from the own ring (stealing from neighbours when
/// it runs dry), decode both sectors of every round through the prepared
/// allocation-free hot path, commit to the private shard.
fn run_worker(ctx: WorkerContext<'_>) -> WorkerOutput {
    let WorkerContext {
        worker_id,
        lattice,
        codec,
        rings,
        counters,
        done,
        epoch,
        factory,
        record_corrections,
        batch_size,
    } = ctx;
    let mut decoder = factory.build();
    decoder.prepare(lattice);
    let decoder_name = decoder.name().to_string();
    let mut frame = PauliFrame::new(lattice.num_data());
    // Reusable per-worker buffers: batch records, one unpacked packet, one
    // syndrome, two sector Pauli strings.  Nothing below allocates in steady
    // state (for decoders with an allocation-free `decode_into`).
    let mut batch: Vec<Vec<u64>> = (0..batch_size)
        .map(|_| vec![0u64; codec.words_per_packet()])
        .collect();
    let mut packet = SyndromePacket::new(0, 0, &Syndrome::new(lattice.num_ancillas()));
    let mut syndrome = Syndrome::new(lattice.num_ancillas());
    let mut x_buf = PauliString::identity(lattice.num_data());
    let mut z_buf = PauliString::identity(lattice.num_data());
    let mut decode_ns = Vec::new();
    let mut total_ns = Vec::new();
    let mut corrections = Vec::new();
    loop {
        // ---- Fill a batch: own ring first, then steal ------------------
        let mut filled = 0usize;
        while filled < batch_size && rings[worker_id].try_pop(&mut batch[filled]) {
            filled += 1;
        }
        if filled == 0 && rings.len() > 1 {
            // Own ring dry: steal a batch from the first busy neighbour so a
            // burst of heavy rounds on one ring is drained by the whole pool.
            for offset in 1..rings.len() {
                let victim = (worker_id + offset) % rings.len();
                while filled < batch_size && rings[victim].try_pop(&mut batch[filled]) {
                    filled += 1;
                }
                if filled > 0 {
                    counters.stolen.fetch_add(filled as u64, Ordering::Relaxed);
                    break;
                }
            }
        }
        if filled == 0 {
            if done.load(Ordering::Acquire) && rings.iter().all(SpmcRing::is_empty) {
                return WorkerOutput {
                    decoder_name,
                    frame,
                    decode_ns,
                    total_ns,
                    corrections,
                };
            }
            counters.stall_polls.fetch_add(1, Ordering::Relaxed);
            std::hint::spin_loop();
            thread::yield_now();
            continue;
        }

        // ---- Decode the batch ------------------------------------------
        // Per-packet service time keeps its PR-2 meaning (the full
        // unpack-to-commit span of that round — what the backlog model's `f`
        // ratio is about): timestamps are chained, one clock read per
        // packet, so batching amortizes the pop/steal scans and counter
        // updates without flattening latency spikes into a batch mean.
        let mut prev = Instant::now();
        for record in &batch[..filled] {
            codec.decode_into(record, &mut packet);
            packet.syndrome.write_to_syndrome(&mut syndrome);
            decoder.decode_into(lattice, &syndrome, Sector::X, &mut x_buf);
            decoder.decode_into(lattice, &syndrome, Sector::Z, &mut z_buf);
            x_buf.compose_with(&z_buf);
            frame.record(&x_buf);
            if record_corrections {
                corrections.push(RoundCorrection {
                    round: packet.round,
                    correction: x_buf.clone(),
                });
            }
            let now = Instant::now();
            decode_ns.push(now.duration_since(prev).as_nanos() as f64);
            total_ns.push(
                (now.duration_since(epoch).as_nanos() as f64 - packet.emitted_ns as f64).max(0.0),
            );
            prev = now;
        }
        counters.decoded.fetch_add(filled as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};

    fn fast_config() -> RuntimeConfig {
        let mut config = RuntimeConfig::new(3);
        config.rounds = 200;
        config.workers = 2;
        config.cadence_cycles = 0;
        config.queue_capacity = 64;
        config
    }

    fn greedy_factory() -> impl DecoderFactory {
        || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
    }

    #[test]
    fn paper_default_cadence_is_400ns() {
        let config = RuntimeConfig::new(5);
        assert!(
            (config.cadence_ns() - 400.0).abs() < 0.5,
            "{}",
            config.cadence_ns()
        );
    }

    #[test]
    fn unpaced_config_has_zero_cadence() {
        let config = fast_config();
        assert_eq!(config.cadence_ns(), 0.0);
    }

    #[test]
    fn every_round_is_decoded_exactly_once() {
        let engine = StreamingEngine::new(fast_config()).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        assert_eq!(counters.generated, 200);
        assert_eq!(counters.enqueued, 200);
        assert_eq!(counters.decoded, 200);
        assert_eq!(counters.dropped, 0);
        assert_eq!(outcome.frame.total_recorded(), 200);
        assert_eq!(outcome.report.decode_latency.summary.count, 200);
        assert!(outcome.report.throughput_per_s > 0.0);
        assert!(!outcome.report.depth_timeline.is_empty());
    }

    #[test]
    fn recorded_corrections_cover_every_round_in_order() {
        let mut config = fast_config();
        config.record_corrections = true;
        config.workers = 3;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let rounds: Vec<u64> = outcome.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn drop_policy_sheds_load_on_a_tiny_ring() {
        let mut config = fast_config();
        config.queue_capacity = 2;
        config.workers = 1;
        config.rounds = 500;
        config.push_policy = PushPolicy::Drop;
        // Slow the workers enough that an un-paced producer overruns the ring.
        let factory = || {
            Box::new(crate::throttle::ThrottledDecoder::new(
                GreedyMatchingDecoder::new(),
                50_000,
            )) as DynDecoder
        };
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&factory);
        let counters = outcome.report.counters;
        assert_eq!(counters.generated, 500);
        assert_eq!(counters.enqueued + counters.dropped, 500);
        assert!(counters.dropped > 0, "tiny ring should overflow");
        assert_eq!(counters.decoded, counters.enqueued);
        // Dropped rounds are shed, not owed: the backlog when generation
        // stopped is at most what fit in the ring plus the packets in flight
        // inside the single worker, never the full overrun.
        assert!(outcome.report.final_backlog <= 4);
    }

    /// Deterministic work stealing: worker 0's own ring is empty, every
    /// packet sits in worker 1's ring, and the producer is already done.
    /// Worker 0 must steal and decode all of them, counting each theft.
    #[test]
    fn starved_worker_steals_from_a_foreign_ring() {
        let lattice = Lattice::new(3).unwrap();
        let codec = PacketCodec::new(lattice.num_ancillas());
        let rings = [
            SpmcRing::new(64, codec.words_per_packet()),
            SpmcRing::new(64, codec.words_per_packet()),
        ];
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut source = SyndromeSource::new(
            Arc::new(lattice.clone()),
            NoiseSpec::PureDephasing { p: 0.1 },
            3,
        )
        .unwrap();
        for round in 0..20u64 {
            let packet = SyndromePacket::new(round, 0, &source.next_syndrome());
            codec.encode(&packet, &mut record);
            rings[1].try_push(&record).unwrap();
        }
        let counters = RuntimeCounters::default();
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let output = run_worker(WorkerContext {
            worker_id: 0,
            lattice: &lattice,
            codec: &codec,
            rings: &rings,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            batch_size: 4,
        });
        let snap = counters.snapshot();
        assert_eq!(snap.decoded, 20);
        assert_eq!(snap.stolen, 20, "every packet was a steal");
        assert_eq!(snap.batches, 5, "20 packets in windows of 4");
        assert_eq!(output.frame.recorded_cycles(), 20);
        let rounds: Vec<u64> = output.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..20).collect::<Vec<u64>>());
        assert!(rings.iter().all(SpmcRing::is_empty));
    }

    #[test]
    fn batched_windows_cover_every_round() {
        let mut config = fast_config();
        config.batch_size = 8;
        config.workers = 1;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        assert_eq!(counters.decoded, 200);
        assert_eq!(outcome.report.batch_size, 8);
        assert!(counters.batches >= 200 / 8);
        assert!(counters.batches <= 200);
        assert!(counters.mean_batch_fill() >= 1.0);
        assert_eq!(outcome.report.decode_latency.summary.count, 200);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_batch_size_rejected() {
        let mut config = fast_config();
        config.batch_size = 0;
        let _ = StreamingEngine::new(config);
    }

    #[test]
    fn invalid_noise_is_rejected_up_front() {
        let mut config = fast_config();
        config.noise = NoiseSpec::PureDephasing { p: 2.0 };
        assert!(StreamingEngine::new(config).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let mut config = fast_config();
        config.workers = 0;
        let _ = StreamingEngine::new(config);
    }
}
