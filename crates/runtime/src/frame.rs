//! The sharded Pauli frame the worker pool commits corrections into.
//!
//! Each worker owns a private [`PauliFrame`] shard *per lattice* — no
//! cross-thread synchronization on the hot path — and the shards are merged
//! per lattice once the stream ends, so a multi-lattice run yields one
//! [`ShardedPauliFrame`] per logical qubit
//! (see [`RuntimeOutcome::frames`](crate::engine::RuntimeOutcome::frames)).
//! The merge is sound because Pauli-string composition is commutative
//! component-wise (modulo global phase, which frame tracking discards): the
//! merged frame is independent of which worker decoded which round.  The
//! multi-worker consistency tests in `tests/streaming_runtime.rs` and
//! `tests/multi_lattice.rs` pin this down against sequential decodes of the
//! same streams.

use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::pauli::PauliString;
use serde::{Deserialize, Serialize};

/// Per-worker Pauli-frame shards plus their merge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedPauliFrame {
    num_data: usize,
    shards: Vec<PauliFrame>,
}

impl ShardedPauliFrame {
    /// Assembles the sharded frame from the workers' private frames.
    ///
    /// # Panics
    ///
    /// Panics if any shard tracks a different number of qubits than
    /// `num_data`.
    #[must_use]
    pub fn from_shards(num_data: usize, shards: Vec<PauliFrame>) -> Self {
        for shard in &shards {
            assert_eq!(
                shard.len(),
                num_data,
                "shard tracks {} qubits, expected {num_data}",
                shard.len()
            );
        }
        ShardedPauliFrame { num_data, shards }
    }

    /// The number of data qubits every shard tracks.
    #[must_use]
    pub fn num_data(&self) -> usize {
        self.num_data
    }

    /// The per-worker shards, in worker order.
    #[must_use]
    pub fn shards(&self) -> &[PauliFrame] {
        &self.shards
    }

    /// Total corrections recorded across all shards.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.shards.iter().map(PauliFrame::recorded_cycles).sum()
    }

    /// The merged accumulated correction: the composition of every shard's
    /// Pauli string (order-independent).
    #[must_use]
    pub fn merged(&self) -> PauliString {
        let mut acc = PauliString::identity(self.num_data);
        for shard in &self.shards {
            acc.compose_with(shard.as_pauli_string());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::pauli::Pauli;

    #[test]
    fn merge_is_order_independent() {
        let mut a = PauliFrame::new(4);
        a.record_sparse(&[0, 1], Pauli::Z);
        let mut b = PauliFrame::new(4);
        b.record_sparse(&[1, 2], Pauli::X);

        let ab = ShardedPauliFrame::from_shards(4, vec![a.clone(), b.clone()]);
        let ba = ShardedPauliFrame::from_shards(4, vec![b, a]);
        assert_eq!(ab.merged(), ba.merged());
        assert_eq!(ab.total_recorded(), 2);
        assert_eq!(ab.shards().len(), 2);
    }

    #[test]
    fn merge_matches_sequential_composition() {
        let mut sequential = PauliFrame::new(3);
        sequential.record_sparse(&[0], Pauli::Z);
        sequential.record_sparse(&[0, 2], Pauli::X);

        let mut shard0 = PauliFrame::new(3);
        shard0.record_sparse(&[0], Pauli::Z);
        let mut shard1 = PauliFrame::new(3);
        shard1.record_sparse(&[0, 2], Pauli::X);
        let sharded = ShardedPauliFrame::from_shards(3, vec![shard0, shard1]);
        assert_eq!(&sharded.merged(), sequential.as_pauli_string());
    }

    #[test]
    #[should_panic(expected = "shard tracks")]
    fn mismatched_shard_width_rejected() {
        let _ = ShardedPauliFrame::from_shards(4, vec![PauliFrame::new(3)]);
    }
}
