//! The seeded endless syndrome stream.
//!
//! A [`SyndromeSource`] reproduces, round after round, exactly what the
//! quantum machine would hand the decoder: sample an error pattern from a
//! stochastic channel, extract the stabilizer syndrome.  It is deterministic
//! in its seed, which is what makes the stream-versus-batch equivalence
//! tests possible — the same `(lattice, noise, seed)` triple always yields
//! the same infinite syndrome sequence, whether consumed by the streaming
//! engine or by a plain offline loop.
//!
//! In the pipeline graph (`crate::stage`), an [`InterleavedSource`] is the
//! heart of the *source* stage: `stage::graph` paces it to each lattice's
//! cadence and feeds its rounds through the QoS gate and skid buffer into
//! the credit channels.

use crate::lattice_set::LatticeSet;
use crate::scenario::script::{ScenarioAction, ScenarioError, ScenarioScript};
use nisqplus_qec::error_model::{
    BurstEvent, Depolarizing, DriftKind, DriftingErrorModel, ErrorModel, PureDephasing,
};
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_qec::QecError;
use nisqplus_sim::timing::CycleTimeConverter;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which stochastic error channel drives the stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// Pure dephasing: `Z` with probability `p` (the paper's headline model).
    PureDephasing {
        /// Phase-flip probability per data qubit per round.
        p: f64,
    },
    /// Symmetric depolarizing: `X`, `Y`, `Z` each with probability `p/3`.
    Depolarizing {
        /// Total error probability per data qubit per round.
        p: f64,
    },
    /// Time-varying dephasing: the phase-flip probability follows a
    /// [`DriftingErrorModel`] schedule over the lattice's round index.
    Drifting {
        /// The rate schedule (ramp or sinusoid).
        model: DriftingErrorModel,
    },
}

impl NoiseSpec {
    /// The total physical error rate of the channel (at round 0 for a
    /// drifting channel).
    #[must_use]
    pub fn physical_error_rate(&self) -> f64 {
        match *self {
            NoiseSpec::PureDephasing { p } | NoiseSpec::Depolarizing { p } => p,
            NoiseSpec::Drifting { model } => model.base_rate(),
        }
    }

    /// Checks that the channel's parameters are valid without building a
    /// stream around it.
    ///
    /// # Errors
    ///
    /// Returns the [`QecError`] the channel constructor would.
    pub fn validate(&self) -> Result<(), QecError> {
        NoiseModel::build(*self).map(|_| ())
    }
}

/// The validated channel behind a [`NoiseSpec`].
#[derive(Debug, Clone, Copy)]
enum NoiseModel {
    Dephasing(PureDephasing),
    Depolarizing(Depolarizing),
    Drifting(DriftingErrorModel),
}

impl NoiseModel {
    fn build(noise: NoiseSpec) -> Result<Self, QecError> {
        Ok(match noise {
            NoiseSpec::PureDephasing { p } => NoiseModel::Dephasing(PureDephasing::new(p)?),
            NoiseSpec::Depolarizing { p } => NoiseModel::Depolarizing(Depolarizing::new(p)?),
            NoiseSpec::Drifting { model } => NoiseModel::Drifting(model),
        })
    }

    /// Samples one round's error pattern.  Every arm consumes exactly one
    /// RNG draw per data qubit, so the random sequence — and with it every
    /// later round — is independent of which channel (or which instantaneous
    /// drifting rate) is active.
    fn sample<R: rand::Rng + ?Sized>(
        &self,
        lattice: &Lattice,
        rng: &mut R,
        round: u64,
    ) -> nisqplus_qec::pauli::PauliString {
        match *self {
            NoiseModel::Dephasing(m) => m.sample(lattice, rng),
            NoiseModel::Depolarizing(m) => m.sample(lattice, rng),
            NoiseModel::Drifting(d) => PureDephasing::new(d.rate_at(round))
                .expect("rate_at clamps to [0, 1]")
                .sample(lattice, rng),
        }
    }
}

/// A deterministic burst-noise episode: for lattice rounds in
/// `[start_round, start_round + rounds)` the stream's error probability is
/// multiplied by `factor` (clamped to a valid probability) — a
/// cosmic-ray-style patch of hostile rounds blanketing one lattice.
///
/// The window is defined purely by the lattice's own round index, never by
/// wall clock or extra randomness, so a burst-overlaid stream is exactly as
/// replayable as a calm one: a second source with the same `(lattice,
/// noise, seed, burst)` tuple reproduces it bit for bit, which keeps the
/// end-of-run residual replay and the byte-identical-frames recovery tests
/// valid under fire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstOverlay {
    /// First lattice round the episode covers.
    pub start_round: u64,
    /// Number of consecutive rounds blanketed.
    pub rounds: u64,
    /// Multiplier applied to the base channel's error probability.
    pub factor: f64,
}

impl BurstOverlay {
    /// Returns `true` if `round` falls inside the episode.
    #[must_use]
    pub fn covers(&self, round: u64) -> bool {
        round >= self.start_round && round < self.end_round()
    }

    /// The first calm round after the episode.
    #[must_use]
    pub fn end_round(&self) -> u64 {
        self.start_round.saturating_add(self.rounds)
    }

    /// The burst-amplified channel derived from `base`.
    #[must_use]
    pub fn amplify(&self, base: NoiseSpec) -> NoiseSpec {
        match base {
            NoiseSpec::PureDephasing { p } => NoiseSpec::PureDephasing {
                p: (p * self.factor).clamp(0.0, 1.0),
            },
            NoiseSpec::Depolarizing { p } => NoiseSpec::Depolarizing {
                p: (p * self.factor).clamp(0.0, 1.0),
            },
            NoiseSpec::Drifting { model } => NoiseSpec::Drifting {
                model: model.amplified(self.factor),
            },
        }
    }
}

impl From<BurstEvent> for BurstOverlay {
    /// A physics-plane [`BurstEvent`] maps directly onto the stream overlay:
    /// same window, same rate multiplier.
    fn from(event: BurstEvent) -> Self {
        BurstOverlay {
            start_round: event.start_round,
            rounds: event.rounds,
            factor: event.factor,
        }
    }
}

/// One homogeneous stretch of a lattice's noise timeline, derived from the
/// stream's actual history — base channel, scripted rate changes and burst
/// windows — so run verdicts can be correlated with the noise regime that
/// produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseEpoch {
    /// First lattice round (inclusive) the epoch covers.
    pub start_round: u64,
    /// One past the last covered round.
    pub end_round: u64,
    /// Mean physical error rate over the epoch (sampled for drifting
    /// channels, exact otherwise).
    pub mean_rate: f64,
    /// Human-readable regime label, e.g. `"dephasing"` or `"drift-ramp+burst"`.
    pub label: String,
}

/// Mean rate of `spec` over lattice rounds `[start, end)`.
fn segment_mean_rate(spec: NoiseSpec, start: u64, end: u64) -> f64 {
    match spec {
        NoiseSpec::PureDephasing { p } | NoiseSpec::Depolarizing { p } => p,
        NoiseSpec::Drifting { model } => {
            let len = end - start;
            let samples = len.min(64);
            let sum: f64 = (0..samples)
                .map(|i| model.rate_at(start + i * len / samples))
                .sum();
            sum / samples as f64
        }
    }
}

/// Regime label for an epoch under `base` noise, burst-qualified.
fn epoch_label(base: NoiseSpec, in_burst: bool) -> String {
    let kind = match base {
        NoiseSpec::PureDephasing { .. } => "dephasing",
        NoiseSpec::Depolarizing { .. } => "depolarizing",
        NoiseSpec::Drifting { model } => match model.kind() {
            DriftKind::Ramp { .. } => "drift-ramp",
            DriftKind::Sinusoid { .. } => "drift-sinusoid",
        },
    };
    if in_burst {
        format!("{kind}+burst")
    } else {
        kind.to_string()
    }
}

/// An endless, seeded stream of surface-code syndromes.
#[derive(Debug, Clone)]
pub struct SyndromeSource {
    lattice: Arc<Lattice>,
    model: NoiseModel,
    /// The burst episode, with its pre-validated amplified channel.
    burst: Option<(BurstOverlay, NoiseModel)>,
    rng: ChaCha8Rng,
    rounds_emitted: u64,
    /// Base-channel history: `(round it took effect, channel)`, starting with
    /// the construction channel at round 0.  This is what
    /// [`SyndromeSource::noise_epochs`] derives the noise timeline from.
    rate_changes: Vec<(u64, NoiseSpec)>,
}

impl SyndromeSource {
    /// Creates a stream over `lattice` driven by `noise`, seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if the noise probability is
    /// outside `[0, 1]`.
    pub fn new(lattice: Arc<Lattice>, noise: NoiseSpec, seed: u64) -> Result<Self, QecError> {
        Ok(SyndromeSource {
            lattice,
            model: NoiseModel::build(noise)?,
            burst: None,
            rng: ChaCha8Rng::seed_from_u64(seed),
            rounds_emitted: 0,
            rate_changes: vec![(0, noise)],
        })
    }

    /// Swaps the stream's base channel from the *next* round on — a scripted
    /// re-calibration event.  Any burst overlay is re-amplified from the new
    /// base.  Because every channel consumes one RNG draw per data qubit per
    /// round, the swap never perturbs the random sequence: replaying the
    /// stream with the same swaps at the same rounds reproduces it bit for
    /// bit.
    ///
    /// # Errors
    ///
    /// Returns the [`QecError`] of the new channel if it is invalid (the
    /// stream is left unchanged).
    pub fn set_noise(&mut self, noise: NoiseSpec) -> Result<(), QecError> {
        let model = NoiseModel::build(noise)?;
        if let Some((overlay, amplified)) = &mut self.burst {
            *amplified = NoiseModel::build(overlay.amplify(noise))?;
        }
        self.model = model;
        self.rate_changes.push((self.rounds_emitted, noise));
        Ok(())
    }

    /// The current base channel.
    #[must_use]
    pub fn noise(&self) -> NoiseSpec {
        self.rate_changes.last().expect("construction entry").1
    }

    /// Derives the stream's noise timeline over rounds `[0, total_rounds)`:
    /// one [`NoiseEpoch`] per homogeneous stretch, cut at every scripted
    /// rate change and burst boundary.
    #[must_use]
    pub fn noise_epochs(&self, total_rounds: u64) -> Vec<NoiseEpoch> {
        if total_rounds == 0 {
            return Vec::new();
        }
        let mut cuts = std::collections::BTreeSet::new();
        cuts.insert(0);
        cuts.insert(total_rounds);
        for &(round, _) in &self.rate_changes {
            if round < total_rounds {
                cuts.insert(round);
            }
        }
        if let Some((overlay, _)) = self.burst {
            if overlay.covers(0) || overlay.start_round < total_rounds {
                cuts.insert(overlay.start_round.min(total_rounds));
            }
            if overlay.end_round() < total_rounds {
                cuts.insert(overlay.end_round());
            }
        }
        let bounds: Vec<u64> = cuts.into_iter().collect();
        bounds
            .windows(2)
            .map(|win| {
                let (start, end) = (win[0], win[1]);
                let base = self
                    .rate_changes
                    .iter()
                    .rev()
                    .find(|&&(round, _)| round <= start)
                    .map(|&(_, noise)| noise)
                    .expect("round-0 base entry");
                let in_burst = self.burst.is_some_and(|(overlay, _)| overlay.covers(start));
                let effective = match self.burst {
                    Some((overlay, _)) if in_burst => overlay.amplify(base),
                    _ => base,
                };
                NoiseEpoch {
                    start_round: start,
                    end_round: end,
                    mean_rate: segment_mean_rate(effective, start, end),
                    label: epoch_label(base, in_burst),
                }
            })
            .collect()
    }

    /// Overlays a time-varying burst episode on the stream: rounds the
    /// episode covers are sampled from the amplified channel, all others
    /// from the base channel.  Apply before emitting any rounds — the
    /// overlay is part of the stream's identity, and replaying a bursty
    /// stream requires the same overlay from round zero.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if the amplified probability
    /// is invalid (it is clamped to `[0, 1]` first, so this is defensive).
    pub fn with_burst(mut self, base: NoiseSpec, burst: BurstOverlay) -> Result<Self, QecError> {
        self.burst = Some((burst, NoiseModel::build(burst.amplify(base))?));
        Ok(self)
    }

    /// The stream's burst episode, if one is overlaid.
    #[must_use]
    pub fn burst(&self) -> Option<BurstOverlay> {
        self.burst.map(|(overlay, _)| overlay)
    }

    /// The lattice whose syndromes are being streamed.
    #[must_use]
    pub fn lattice(&self) -> &Arc<Lattice> {
        &self.lattice
    }

    /// The number of rounds generated so far.
    #[must_use]
    pub fn rounds_emitted(&self) -> u64 {
        self.rounds_emitted
    }

    /// Generates the next round's syndrome.  Never exhausts.
    pub fn next_syndrome(&mut self) -> Syndrome {
        self.next_error_and_syndrome().1
    }

    /// Generates the next round, returning the sampled physical error
    /// together with its syndrome.  Consumes exactly the same randomness as
    /// [`SyndromeSource::next_syndrome`], so a second source with the same
    /// `(lattice, noise, seed)` triple can *replay* a run's error stream —
    /// which is how the runtime's end-of-run residual analysis recovers the
    /// errors behind the syndromes it already decoded (or shed).
    pub fn next_error_and_syndrome(&mut self) -> (nisqplus_qec::pauli::PauliString, Syndrome) {
        // Burst windows are keyed by the round index alone, so live
        // generation and replay pick the same channel for every round.
        let model = match self.burst {
            Some((overlay, amplified)) if overlay.covers(self.rounds_emitted) => amplified,
            _ => self.model,
        };
        let error = model.sample(&self.lattice, &mut self.rng, self.rounds_emitted);
        self.rounds_emitted += 1;
        let syndrome = self.lattice.syndrome_of(&error);
        (error, syndrome)
    }
}

/// One round emitted by an [`InterleavedSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourcedRound {
    /// Id of the lattice the round belongs to.
    pub lattice_id: u32,
    /// Zero-based round index *within that lattice's stream*.
    pub round: u64,
    /// The virtual instant (nanoseconds since the run epoch) at which the
    /// round is due under the lattice's cadence; `0.0` for unpaced lattices.
    pub due_ns: f64,
    /// The round's syndrome.
    pub syndrome: Syndrome,
    /// The seeded physical error behind the syndrome.  Carrying it costs the
    /// producer nothing extra — [`SyndromeSource::next_error_and_syndrome`]
    /// consumes exactly the randomness [`SyndromeSource::next_syndrome`]
    /// would — and is what lets the pipeline classify residuals *in stream*
    /// (shed rounds at the producer, decoded rounds in the workers) instead
    /// of replaying every lattice at the end of the run.
    pub error: nisqplus_qec::pauli::PauliString,
}

/// Per-lattice stream state inside an [`InterleavedSource`].
#[derive(Debug, Clone)]
struct LatticeStream {
    source: SyndromeSource,
    cadence_ns: f64,
    rounds: u64,
    emitted: u64,
    /// Virtual instant the stream's cadence is anchored at: `0.0` for
    /// lattices live from the start, the activation instant for hot-added
    /// ones (their round `k` is due at `base_ns + k * cadence_ns`).
    base_ns: f64,
}

/// A scripted reconfiguration that has fired, drained by the pipeline (via
/// [`InterleavedSource::take_elastic_events`]) for journaling and final-frame
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticEvent {
    /// Machine-global round at which the action fired.
    pub at_round: u64,
    /// The lattice the action targeted.
    pub lattice_id: u32,
    /// What happened.
    pub kind: ElasticEventKind,
}

/// The kind of a fired [`ElasticEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticEventKind {
    /// A dormant lattice came online.
    Added,
    /// A lattice retired after emitting `final_round` rounds; records
    /// claiming round `>= final_round` for it are now quarantinable.
    Retired {
        /// Rounds the lattice emitted before retiring.
        final_round: u64,
    },
    /// A lattice's noise channel was swapped.
    Retuned,
}

/// N seeded per-lattice syndrome streams, interleaved on independent
/// cadences — what a full NISQ+ machine hands its decoder fabric.
///
/// Each registered lattice gets its own [`SyndromeSource`] (own seed, own
/// noise channel), so *per-lattice* content is independent of the
/// interleaving: lattice `i`'s round sequence is byte-identical to what a
/// standalone `SyndromeSource` with the same `(lattice, noise, seed)` would
/// produce, which is what the sharded stream-versus-batch equivalence tests
/// rely on.
///
/// Ordering: the next round emitted is the one with the earliest due time
/// `emitted * cadence_ns` (ties broken by fewest rounds emitted, then lowest
/// lattice id).  Unpaced lattices (`cadence_cycles == 0`) are always due, so
/// an all-unpaced set interleaves round-robin; mixing paced and unpaced
/// lattices drains the unpaced ones first.  Selection is a binary heap over
/// the per-lattice next-due times, so emitting a round costs `O(log N)` on
/// the producer hot path rather than a full scan of the machine.
#[derive(Debug, Clone)]
pub struct InterleavedSource {
    streams: Vec<LatticeStream>,
    /// Min-heap of each non-exhausted lattice's next due round.
    due: std::collections::BinaryHeap<std::cmp::Reverse<DueEntry>>,
    remaining: u64,
    /// Scripted actions sorted by firing round; `next_action` indexes the
    /// first not yet fired.
    actions: Vec<ScenarioAction>,
    next_action: usize,
    /// Machine-global rounds emitted so far — the clock scripts fire on.
    global_emitted: u64,
    /// Due instant of the most recently emitted round: the virtual "now"
    /// hot-added lattices anchor their cadence at.
    last_due_ns: f64,
    /// Fired actions not yet drained by the pipeline.
    fired: Vec<ElasticEvent>,
}

/// One lattice's next due round, ordered by `(due_ns, emitted, lattice_id)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DueEntry {
    due_ns: f64,
    emitted: u64,
    lattice_id: usize,
}

impl Eq for DueEntry {}

impl PartialOrd for DueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due_ns
            .partial_cmp(&other.due_ns)
            .expect("cadences are finite")
            .then(self.emitted.cmp(&other.emitted))
            .then(self.lattice_id.cmp(&other.lattice_id))
    }
}

impl InterleavedSource {
    /// Builds one stream per lattice of `set`, mapping each lattice's
    /// `cadence_cycles` to nanoseconds through `cycle_time`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if any lattice's noise
    /// probability is outside `[0, 1]`.
    pub fn new(set: &LatticeSet, cycle_time: &CycleTimeConverter) -> Result<Self, QecError> {
        let mut streams = Vec::with_capacity(set.len());
        let mut due = std::collections::BinaryHeap::with_capacity(set.len());
        for (lattice_id, spec, lattice) in set.iter() {
            let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed)?;
            if let Some(burst) = spec.burst {
                source = source.with_burst(spec.noise, burst)?;
            }
            streams.push(LatticeStream {
                source,
                cadence_ns: cycle_time.cycles_to_ns(spec.cadence_cycles),
                rounds: spec.rounds,
                emitted: 0,
                base_ns: 0.0,
            });
            due.push(std::cmp::Reverse(DueEntry {
                due_ns: 0.0,
                emitted: 0,
                lattice_id,
            }));
        }
        Ok(InterleavedSource {
            remaining: streams.iter().map(|s| s.rounds).sum(),
            streams,
            due,
            actions: Vec::new(),
            next_action: 0,
            global_emitted: 0,
            last_due_ns: 0.0,
            fired: Vec::new(),
        })
    }

    /// Applies a scenario script: actions fire as the machine-global round
    /// counter reaches them, and every lattice targeted by an `AddLattice`
    /// starts *dormant* (emitting nothing until its action fires).  Apply
    /// before emitting any rounds — the script is part of the stream's
    /// replayable identity.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the script fails
    /// [`ScenarioScript::validate`] against this machine.
    ///
    /// # Panics
    ///
    /// Panics if any round has already been emitted.
    pub fn apply_script(&mut self, script: &ScenarioScript) -> Result<(), ScenarioError> {
        assert_eq!(
            self.global_emitted, 0,
            "scenario scripts must be applied before the stream starts"
        );
        script.validate(self.streams.len())?;
        let actions = script.sorted_actions();
        let dormant: std::collections::BTreeSet<usize> = actions
            .iter()
            .filter_map(|action| match *action {
                ScenarioAction::AddLattice { lattice_id, .. } => Some(lattice_id as usize),
                _ => None,
            })
            .collect();
        if !dormant.is_empty() {
            self.due = (0..self.streams.len())
                .filter(|lattice_id| !dormant.contains(lattice_id))
                .map(|lattice_id| {
                    std::cmp::Reverse(DueEntry {
                        due_ns: 0.0,
                        emitted: 0,
                        lattice_id,
                    })
                })
                .collect();
        }
        self.actions = actions;
        self.next_action = 0;
        Ok(())
    }

    /// Drains the scripted actions that have fired since the last drain, in
    /// firing order.
    pub fn take_elastic_events(&mut self) -> Vec<ElasticEvent> {
        std::mem::take(&mut self.fired)
    }

    /// Derives every lattice's noise timeline over the rounds it actually
    /// emitted (retired lattices' timelines end at retirement, dormant ones
    /// are empty).
    #[must_use]
    pub fn noise_epochs(&self) -> Vec<Vec<NoiseEpoch>> {
        self.streams
            .iter()
            .map(|stream| stream.source.noise_epochs(stream.emitted))
            .collect()
    }

    /// Fires every scripted action due at or before the current global
    /// round.  Called before each emission (and on the terminal call, so a
    /// retire scheduled for the final round still fires).
    fn fire_due_actions(&mut self) {
        while self.next_action < self.actions.len()
            && self.actions[self.next_action].at_round() <= self.global_emitted
        {
            let action = self.actions[self.next_action];
            self.next_action += 1;
            let at_round = self.global_emitted;
            match action {
                ScenarioAction::AddLattice { lattice_id, .. } => {
                    let stream = &mut self.streams[lattice_id as usize];
                    stream.base_ns = self.last_due_ns;
                    if stream.emitted < stream.rounds {
                        self.due.push(std::cmp::Reverse(DueEntry {
                            due_ns: self.last_due_ns,
                            emitted: stream.emitted,
                            lattice_id: lattice_id as usize,
                        }));
                    }
                    self.fired.push(ElasticEvent {
                        at_round,
                        lattice_id,
                        kind: ElasticEventKind::Added,
                    });
                }
                ScenarioAction::RetireLattice { lattice_id, .. } => {
                    let stream = &mut self.streams[lattice_id as usize];
                    // Truncate the stream where it stands; the stale heap
                    // entry (if any) is skipped lazily by `next_round`.
                    self.remaining -= stream.rounds - stream.emitted;
                    stream.rounds = stream.emitted;
                    self.fired.push(ElasticEvent {
                        at_round,
                        lattice_id,
                        kind: ElasticEventKind::Retired {
                            final_round: stream.emitted,
                        },
                    });
                }
                ScenarioAction::SetErrorRate {
                    lattice_id, noise, ..
                } => {
                    self.streams[lattice_id as usize]
                        .source
                        .set_noise(noise)
                        .expect("noise validated by apply_script");
                    self.fired.push(ElasticEvent {
                        at_round,
                        lattice_id,
                        kind: ElasticEventKind::Retuned,
                    });
                }
            }
        }
    }

    /// Rounds left to emit across all lattices.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Overlays a burst episode on one lattice's stream.  Must be applied
    /// before that lattice emits any rounds (the overlay is part of the
    /// stream's replayable identity).
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if the amplified channel is
    /// invalid.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range or the lattice has already
    /// emitted rounds.
    pub fn set_burst(
        &mut self,
        lattice_id: usize,
        base: NoiseSpec,
        burst: BurstOverlay,
    ) -> Result<(), QecError> {
        let stream = &mut self.streams[lattice_id];
        assert_eq!(
            stream.emitted, 0,
            "burst overlays must be applied before the stream starts"
        );
        stream.source = stream.source.clone().with_burst(base, burst)?;
        Ok(())
    }

    /// The burst overlay applied to `lattice_id`'s stream, if any.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn burst_overlay(&self, lattice_id: usize) -> Option<BurstOverlay> {
        self.streams[lattice_id].source.burst()
    }

    /// Emits the next due round, or `None` when every live lattice's stream
    /// has ended (scripted actions due at the terminal round still fire).
    pub fn next_round(&mut self) -> Option<SourcedRound> {
        self.fire_due_actions();
        loop {
            let std::cmp::Reverse(entry) = self.due.pop()?;
            let stream = &mut self.streams[entry.lattice_id];
            if entry.emitted >= stream.rounds {
                // The lattice retired after this entry was pushed.
                continue;
            }
            debug_assert_eq!(stream.emitted, entry.emitted, "heap out of sync");
            let round = entry.emitted;
            stream.emitted += 1;
            self.remaining -= 1;
            if stream.emitted < stream.rounds {
                self.due.push(std::cmp::Reverse(DueEntry {
                    due_ns: stream.base_ns + stream.emitted as f64 * stream.cadence_ns,
                    emitted: stream.emitted,
                    lattice_id: entry.lattice_id,
                }));
            }
            self.global_emitted += 1;
            self.last_due_ns = entry.due_ns;
            let (error, syndrome) = stream.source.next_error_and_syndrome();
            return Some(SourcedRound {
                lattice_id: entry.lattice_id as u32,
                round,
                due_ns: entry.due_ns,
                syndrome,
                error,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::LatticeSpec;

    fn lattice() -> Arc<Lattice> {
        Arc::new(Lattice::new(5).unwrap())
    }

    #[test]
    fn same_seed_same_stream() {
        let noise = NoiseSpec::PureDephasing { p: 0.05 };
        let mut a = SyndromeSource::new(lattice(), noise, 42).unwrap();
        let mut b = SyndromeSource::new(lattice(), noise, 42).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_syndrome(), b.next_syndrome());
        }
        assert_eq!(a.rounds_emitted(), 50);
    }

    #[test]
    fn different_seeds_diverge() {
        let noise = NoiseSpec::PureDephasing { p: 0.1 };
        let mut a = SyndromeSource::new(lattice(), noise, 1).unwrap();
        let mut b = SyndromeSource::new(lattice(), noise, 2).unwrap();
        let distinct = (0..50).any(|_| a.next_syndrome() != b.next_syndrome());
        assert!(
            distinct,
            "independent seeds should not produce equal streams"
        );
    }

    #[test]
    fn syndromes_have_lattice_width() {
        let lat = lattice();
        let mut source =
            SyndromeSource::new(lat.clone(), NoiseSpec::Depolarizing { p: 0.02 }, 7).unwrap();
        let s = source.next_syndrome();
        assert_eq!(s.len(), lat.num_ancillas());
    }

    #[test]
    fn error_and_syndrome_stream_replays_the_syndrome_stream() {
        let noise = NoiseSpec::Depolarizing { p: 0.1 };
        let mut plain = SyndromeSource::new(lattice(), noise, 9).unwrap();
        let mut replay = SyndromeSource::new(lattice(), noise, 9).unwrap();
        for _ in 0..30 {
            let syndrome = plain.next_syndrome();
            let (error, replayed) = replay.next_error_and_syndrome();
            assert_eq!(replayed, syndrome);
            assert_eq!(replay.lattice().syndrome_of(&error), syndrome);
        }
        assert_eq!(plain.rounds_emitted(), replay.rounds_emitted());
    }

    #[test]
    fn invalid_probability_is_rejected() {
        assert!(SyndromeSource::new(lattice(), NoiseSpec::PureDephasing { p: 1.5 }, 0).is_err());
        assert!(SyndromeSource::new(lattice(), NoiseSpec::Depolarizing { p: -0.1 }, 0).is_err());
    }

    fn spec(distance: usize, seed: u64, rounds: u64, cadence_cycles: usize) -> LatticeSpec {
        let mut spec = LatticeSpec::new(distance);
        spec.seed = seed;
        spec.rounds = rounds;
        spec.cadence_cycles = cadence_cycles;
        spec
    }

    #[test]
    fn unpaced_streams_interleave_round_robin() {
        let set = LatticeSet::new(vec![spec(3, 1, 3, 0), spec(5, 2, 3, 0)]).unwrap();
        let mut source =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        assert_eq!(source.remaining(), 6);
        let order: Vec<(u32, u64)> = std::iter::from_fn(|| source.next_round())
            .map(|r| (r.lattice_id, r.round))
            .collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
        assert_eq!(source.remaining(), 0);
        assert!(source.next_round().is_none());
    }

    #[test]
    fn faster_cadence_emits_proportionally_more_rounds() {
        // Lattice 0 is due every 100 cycles, lattice 1 every 300: over the
        // first rounds, lattice 0 emits three rounds per lattice-1 round.
        let set = LatticeSet::new(vec![spec(3, 1, 9, 100), spec(3, 2, 3, 300)]).unwrap();
        let mut source =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        let first_eight: Vec<u32> = (0..8)
            .map(|_| source.next_round().unwrap().lattice_id)
            .collect();
        assert_eq!(
            first_eight.iter().filter(|&&id| id == 0).count(),
            6,
            "order was {first_eight:?}"
        );
        // Due times are monotone in each lattice's own round index.
        let mut last_due = [f64::NEG_INFINITY; 2];
        while let Some(round) = source.next_round() {
            assert!(round.due_ns >= last_due[round.lattice_id as usize]);
            last_due[round.lattice_id as usize] = round.due_ns;
        }
    }

    /// Interleaving is content-transparent: each lattice's rounds match a
    /// standalone seeded source over the same `(lattice, noise, seed)`.
    #[test]
    fn per_lattice_content_is_independent_of_interleaving() {
        let set = LatticeSet::new(vec![spec(3, 11, 5, 0), spec(5, 22, 7, 0)]).unwrap();
        let mut source =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        let mut per_lattice: Vec<Vec<Syndrome>> = vec![Vec::new(), Vec::new()];
        while let Some(round) = source.next_round() {
            assert_eq!(
                per_lattice[round.lattice_id as usize].len() as u64,
                round.round
            );
            // The carried error is the one behind the carried syndrome.
            assert_eq!(
                set.lattice(round.lattice_id as usize)
                    .syndrome_of(&round.error),
                round.syndrome
            );
            per_lattice[round.lattice_id as usize].push(round.syndrome);
        }
        for (id, expected_rounds) in [(0usize, 5u64), (1, 7)] {
            let spec = set.spec(id);
            let mut reference =
                SyndromeSource::new(set.lattice(id).clone(), spec.noise, spec.seed).unwrap();
            assert_eq!(per_lattice[id].len() as u64, expected_rounds);
            for streamed in &per_lattice[id] {
                assert_eq!(streamed, &reference.next_syndrome());
            }
        }
    }

    #[test]
    fn burst_only_changes_rounds_inside_the_window() {
        let noise = NoiseSpec::PureDephasing { p: 0.01 };
        let overlay = BurstOverlay {
            start_round: 10,
            rounds: 5,
            factor: 40.0,
        };
        let mut calm = SyndromeSource::new(lattice(), noise, 77).unwrap();
        let mut bursty = SyndromeSource::new(lattice(), noise, 77)
            .unwrap()
            .with_burst(noise, overlay)
            .unwrap();
        assert_eq!(bursty.burst(), Some(overlay));
        // Before the window, the streams are identical: the overlay does not
        // perturb calm rounds or consume extra randomness.
        for round in 0..10u64 {
            assert!(!overlay.covers(round));
            assert_eq!(calm.next_syndrome(), bursty.next_syndrome());
        }
        // Inside the window the amplified channel fires much harder; with
        // p 0.01 -> 0.4 over five d=5 rounds, divergence is overwhelming.
        let diverged = (10..15u64).any(|round| {
            assert!(overlay.covers(round));
            calm.next_syndrome() != bursty.next_syndrome()
        });
        assert!(diverged, "burst window left the stream untouched");
    }

    #[test]
    fn bursty_streams_replay_exactly() {
        let noise = NoiseSpec::Depolarizing { p: 0.02 };
        let overlay = BurstOverlay {
            start_round: 3,
            rounds: 4,
            factor: 25.0,
        };
        let mut live = SyndromeSource::new(lattice(), noise, 5)
            .unwrap()
            .with_burst(noise, overlay)
            .unwrap();
        let mut replay = SyndromeSource::new(lattice(), noise, 5)
            .unwrap()
            .with_burst(noise, overlay)
            .unwrap();
        for _ in 0..12 {
            let syndrome = live.next_syndrome();
            let (error, replayed) = replay.next_error_and_syndrome();
            assert_eq!(replayed, syndrome);
            assert_eq!(replay.lattice().syndrome_of(&error), syndrome);
        }
    }

    #[test]
    fn burst_amplification_clamps_to_valid_probability() {
        let overlay = BurstOverlay {
            start_round: 0,
            rounds: 1,
            factor: 1e6,
        };
        let amplified = overlay.amplify(NoiseSpec::PureDephasing { p: 0.5 });
        assert_eq!(amplified, NoiseSpec::PureDephasing { p: 1.0 });
        // And the overlaid source builds fine even with an extreme factor.
        let noise = NoiseSpec::PureDephasing { p: 0.5 };
        assert!(SyndromeSource::new(lattice(), noise, 0)
            .unwrap()
            .with_burst(noise, overlay)
            .is_ok());
    }

    #[test]
    fn interleaved_burst_applies_to_one_lattice_only() {
        let set = LatticeSet::new(vec![spec(3, 11, 6, 0), spec(3, 22, 6, 0)]).unwrap();
        let overlay = BurstOverlay {
            start_round: 2,
            rounds: 2,
            factor: 30.0,
        };
        let mut bursty =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        bursty.set_burst(1, set.spec(1).noise, overlay).unwrap();
        let mut calm =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        while let Some(round) = bursty.next_round() {
            let reference = calm.next_round().unwrap();
            assert_eq!(round.lattice_id, reference.lattice_id);
            assert_eq!(round.round, reference.round);
            if round.lattice_id == 0 || !overlay.covers(round.round) {
                assert_eq!(round.syndrome, reference.syndrome);
            }
        }
        assert!(calm.next_round().is_none());
    }

    #[test]
    fn noise_spec_reports_rate() {
        assert_eq!(
            NoiseSpec::PureDephasing { p: 0.03 }.physical_error_rate(),
            0.03
        );
        assert_eq!(
            NoiseSpec::Depolarizing { p: 0.01 }.physical_error_rate(),
            0.01
        );
    }
}
