//! The seeded endless syndrome stream.
//!
//! A [`SyndromeSource`] reproduces, round after round, exactly what the
//! quantum machine would hand the decoder: sample an error pattern from a
//! stochastic channel, extract the stabilizer syndrome.  It is deterministic
//! in its seed, which is what makes the stream-versus-batch equivalence
//! tests possible — the same `(lattice, noise, seed)` triple always yields
//! the same infinite syndrome sequence, whether consumed by the streaming
//! engine or by a plain offline loop.

use nisqplus_qec::error_model::{Depolarizing, ErrorModel, PureDephasing};
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_qec::QecError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which stochastic error channel drives the stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// Pure dephasing: `Z` with probability `p` (the paper's headline model).
    PureDephasing {
        /// Phase-flip probability per data qubit per round.
        p: f64,
    },
    /// Symmetric depolarizing: `X`, `Y`, `Z` each with probability `p/3`.
    Depolarizing {
        /// Total error probability per data qubit per round.
        p: f64,
    },
}

impl NoiseSpec {
    /// The total physical error rate of the channel.
    #[must_use]
    pub fn physical_error_rate(&self) -> f64 {
        match *self {
            NoiseSpec::PureDephasing { p } | NoiseSpec::Depolarizing { p } => p,
        }
    }
}

/// The validated channel behind a [`NoiseSpec`].
#[derive(Debug, Clone, Copy)]
enum NoiseModel {
    Dephasing(PureDephasing),
    Depolarizing(Depolarizing),
}

/// An endless, seeded stream of surface-code syndromes.
#[derive(Debug, Clone)]
pub struct SyndromeSource {
    lattice: Arc<Lattice>,
    model: NoiseModel,
    rng: ChaCha8Rng,
    rounds_emitted: u64,
}

impl SyndromeSource {
    /// Creates a stream over `lattice` driven by `noise`, seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if the noise probability is
    /// outside `[0, 1]`.
    pub fn new(lattice: Arc<Lattice>, noise: NoiseSpec, seed: u64) -> Result<Self, QecError> {
        let model = match noise {
            NoiseSpec::PureDephasing { p } => NoiseModel::Dephasing(PureDephasing::new(p)?),
            NoiseSpec::Depolarizing { p } => NoiseModel::Depolarizing(Depolarizing::new(p)?),
        };
        Ok(SyndromeSource {
            lattice,
            model,
            rng: ChaCha8Rng::seed_from_u64(seed),
            rounds_emitted: 0,
        })
    }

    /// The lattice whose syndromes are being streamed.
    #[must_use]
    pub fn lattice(&self) -> &Arc<Lattice> {
        &self.lattice
    }

    /// The number of rounds generated so far.
    #[must_use]
    pub fn rounds_emitted(&self) -> u64 {
        self.rounds_emitted
    }

    /// Generates the next round's syndrome.  Never exhausts.
    pub fn next_syndrome(&mut self) -> Syndrome {
        let error = match self.model {
            NoiseModel::Dephasing(m) => m.sample(&self.lattice, &mut self.rng),
            NoiseModel::Depolarizing(m) => m.sample(&self.lattice, &mut self.rng),
        };
        self.rounds_emitted += 1;
        self.lattice.syndrome_of(&error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice() -> Arc<Lattice> {
        Arc::new(Lattice::new(5).unwrap())
    }

    #[test]
    fn same_seed_same_stream() {
        let noise = NoiseSpec::PureDephasing { p: 0.05 };
        let mut a = SyndromeSource::new(lattice(), noise, 42).unwrap();
        let mut b = SyndromeSource::new(lattice(), noise, 42).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_syndrome(), b.next_syndrome());
        }
        assert_eq!(a.rounds_emitted(), 50);
    }

    #[test]
    fn different_seeds_diverge() {
        let noise = NoiseSpec::PureDephasing { p: 0.1 };
        let mut a = SyndromeSource::new(lattice(), noise, 1).unwrap();
        let mut b = SyndromeSource::new(lattice(), noise, 2).unwrap();
        let distinct = (0..50).any(|_| a.next_syndrome() != b.next_syndrome());
        assert!(
            distinct,
            "independent seeds should not produce equal streams"
        );
    }

    #[test]
    fn syndromes_have_lattice_width() {
        let lat = lattice();
        let mut source =
            SyndromeSource::new(lat.clone(), NoiseSpec::Depolarizing { p: 0.02 }, 7).unwrap();
        let s = source.next_syndrome();
        assert_eq!(s.len(), lat.num_ancillas());
    }

    #[test]
    fn invalid_probability_is_rejected() {
        assert!(SyndromeSource::new(lattice(), NoiseSpec::PureDephasing { p: 1.5 }, 0).is_err());
        assert!(SyndromeSource::new(lattice(), NoiseSpec::Depolarizing { p: -0.1 }, 0).is_err());
    }

    #[test]
    fn noise_spec_reports_rate() {
        assert_eq!(
            NoiseSpec::PureDephasing { p: 0.03 }.physical_error_rate(),
            0.03
        );
        assert_eq!(
            NoiseSpec::Depolarizing { p: 0.01 }.physical_error_rate(),
            0.01
        );
    }
}
