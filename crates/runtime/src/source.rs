//! The seeded endless syndrome stream.
//!
//! A [`SyndromeSource`] reproduces, round after round, exactly what the
//! quantum machine would hand the decoder: sample an error pattern from a
//! stochastic channel, extract the stabilizer syndrome.  It is deterministic
//! in its seed, which is what makes the stream-versus-batch equivalence
//! tests possible — the same `(lattice, noise, seed)` triple always yields
//! the same infinite syndrome sequence, whether consumed by the streaming
//! engine or by a plain offline loop.
//!
//! In the pipeline graph (`crate::stage`), an [`InterleavedSource`] is the
//! heart of the *source* stage: `stage::graph` paces it to each lattice's
//! cadence and feeds its rounds through the QoS gate and skid buffer into
//! the credit channels.

use crate::lattice_set::LatticeSet;
use nisqplus_qec::error_model::{Depolarizing, ErrorModel, PureDephasing};
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_qec::QecError;
use nisqplus_sim::timing::CycleTimeConverter;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which stochastic error channel drives the stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// Pure dephasing: `Z` with probability `p` (the paper's headline model).
    PureDephasing {
        /// Phase-flip probability per data qubit per round.
        p: f64,
    },
    /// Symmetric depolarizing: `X`, `Y`, `Z` each with probability `p/3`.
    Depolarizing {
        /// Total error probability per data qubit per round.
        p: f64,
    },
}

impl NoiseSpec {
    /// The total physical error rate of the channel.
    #[must_use]
    pub fn physical_error_rate(&self) -> f64 {
        match *self {
            NoiseSpec::PureDephasing { p } | NoiseSpec::Depolarizing { p } => p,
        }
    }
}

/// The validated channel behind a [`NoiseSpec`].
#[derive(Debug, Clone, Copy)]
enum NoiseModel {
    Dephasing(PureDephasing),
    Depolarizing(Depolarizing),
}

/// An endless, seeded stream of surface-code syndromes.
#[derive(Debug, Clone)]
pub struct SyndromeSource {
    lattice: Arc<Lattice>,
    model: NoiseModel,
    rng: ChaCha8Rng,
    rounds_emitted: u64,
}

impl SyndromeSource {
    /// Creates a stream over `lattice` driven by `noise`, seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if the noise probability is
    /// outside `[0, 1]`.
    pub fn new(lattice: Arc<Lattice>, noise: NoiseSpec, seed: u64) -> Result<Self, QecError> {
        let model = match noise {
            NoiseSpec::PureDephasing { p } => NoiseModel::Dephasing(PureDephasing::new(p)?),
            NoiseSpec::Depolarizing { p } => NoiseModel::Depolarizing(Depolarizing::new(p)?),
        };
        Ok(SyndromeSource {
            lattice,
            model,
            rng: ChaCha8Rng::seed_from_u64(seed),
            rounds_emitted: 0,
        })
    }

    /// The lattice whose syndromes are being streamed.
    #[must_use]
    pub fn lattice(&self) -> &Arc<Lattice> {
        &self.lattice
    }

    /// The number of rounds generated so far.
    #[must_use]
    pub fn rounds_emitted(&self) -> u64 {
        self.rounds_emitted
    }

    /// Generates the next round's syndrome.  Never exhausts.
    pub fn next_syndrome(&mut self) -> Syndrome {
        self.next_error_and_syndrome().1
    }

    /// Generates the next round, returning the sampled physical error
    /// together with its syndrome.  Consumes exactly the same randomness as
    /// [`SyndromeSource::next_syndrome`], so a second source with the same
    /// `(lattice, noise, seed)` triple can *replay* a run's error stream —
    /// which is how the runtime's end-of-run residual analysis recovers the
    /// errors behind the syndromes it already decoded (or shed).
    pub fn next_error_and_syndrome(&mut self) -> (nisqplus_qec::pauli::PauliString, Syndrome) {
        let error = match self.model {
            NoiseModel::Dephasing(m) => m.sample(&self.lattice, &mut self.rng),
            NoiseModel::Depolarizing(m) => m.sample(&self.lattice, &mut self.rng),
        };
        self.rounds_emitted += 1;
        let syndrome = self.lattice.syndrome_of(&error);
        (error, syndrome)
    }
}

/// One round emitted by an [`InterleavedSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourcedRound {
    /// Id of the lattice the round belongs to.
    pub lattice_id: u32,
    /// Zero-based round index *within that lattice's stream*.
    pub round: u64,
    /// The virtual instant (nanoseconds since the run epoch) at which the
    /// round is due under the lattice's cadence; `0.0` for unpaced lattices.
    pub due_ns: f64,
    /// The round's syndrome.
    pub syndrome: Syndrome,
}

/// Per-lattice stream state inside an [`InterleavedSource`].
#[derive(Debug, Clone)]
struct LatticeStream {
    source: SyndromeSource,
    cadence_ns: f64,
    rounds: u64,
    emitted: u64,
}

/// N seeded per-lattice syndrome streams, interleaved on independent
/// cadences — what a full NISQ+ machine hands its decoder fabric.
///
/// Each registered lattice gets its own [`SyndromeSource`] (own seed, own
/// noise channel), so *per-lattice* content is independent of the
/// interleaving: lattice `i`'s round sequence is byte-identical to what a
/// standalone `SyndromeSource` with the same `(lattice, noise, seed)` would
/// produce, which is what the sharded stream-versus-batch equivalence tests
/// rely on.
///
/// Ordering: the next round emitted is the one with the earliest due time
/// `emitted * cadence_ns` (ties broken by fewest rounds emitted, then lowest
/// lattice id).  Unpaced lattices (`cadence_cycles == 0`) are always due, so
/// an all-unpaced set interleaves round-robin; mixing paced and unpaced
/// lattices drains the unpaced ones first.  Selection is a binary heap over
/// the per-lattice next-due times, so emitting a round costs `O(log N)` on
/// the producer hot path rather than a full scan of the machine.
#[derive(Debug, Clone)]
pub struct InterleavedSource {
    streams: Vec<LatticeStream>,
    /// Min-heap of each non-exhausted lattice's next due round.
    due: std::collections::BinaryHeap<std::cmp::Reverse<DueEntry>>,
    remaining: u64,
}

/// One lattice's next due round, ordered by `(due_ns, emitted, lattice_id)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DueEntry {
    due_ns: f64,
    emitted: u64,
    lattice_id: usize,
}

impl Eq for DueEntry {}

impl PartialOrd for DueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due_ns
            .partial_cmp(&other.due_ns)
            .expect("cadences are finite")
            .then(self.emitted.cmp(&other.emitted))
            .then(self.lattice_id.cmp(&other.lattice_id))
    }
}

impl InterleavedSource {
    /// Builds one stream per lattice of `set`, mapping each lattice's
    /// `cadence_cycles` to nanoseconds through `cycle_time`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if any lattice's noise
    /// probability is outside `[0, 1]`.
    pub fn new(set: &LatticeSet, cycle_time: &CycleTimeConverter) -> Result<Self, QecError> {
        let mut streams = Vec::with_capacity(set.len());
        let mut due = std::collections::BinaryHeap::with_capacity(set.len());
        for (lattice_id, spec, lattice) in set.iter() {
            streams.push(LatticeStream {
                source: SyndromeSource::new(lattice.clone(), spec.noise, spec.seed)?,
                cadence_ns: cycle_time.cycles_to_ns(spec.cadence_cycles),
                rounds: spec.rounds,
                emitted: 0,
            });
            due.push(std::cmp::Reverse(DueEntry {
                due_ns: 0.0,
                emitted: 0,
                lattice_id,
            }));
        }
        Ok(InterleavedSource {
            remaining: streams.iter().map(|s| s.rounds).sum(),
            streams,
            due,
        })
    }

    /// Rounds left to emit across all lattices.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Emits the next due round, or `None` when every lattice's stream has
    /// ended.
    pub fn next_round(&mut self) -> Option<SourcedRound> {
        let std::cmp::Reverse(entry) = self.due.pop()?;
        let stream = &mut self.streams[entry.lattice_id];
        debug_assert_eq!(stream.emitted, entry.emitted, "heap out of sync");
        let round = entry.emitted;
        stream.emitted += 1;
        self.remaining -= 1;
        if stream.emitted < stream.rounds {
            self.due.push(std::cmp::Reverse(DueEntry {
                due_ns: stream.emitted as f64 * stream.cadence_ns,
                emitted: stream.emitted,
                lattice_id: entry.lattice_id,
            }));
        }
        Some(SourcedRound {
            lattice_id: entry.lattice_id as u32,
            round,
            due_ns: entry.due_ns,
            syndrome: stream.source.next_syndrome(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::LatticeSpec;

    fn lattice() -> Arc<Lattice> {
        Arc::new(Lattice::new(5).unwrap())
    }

    #[test]
    fn same_seed_same_stream() {
        let noise = NoiseSpec::PureDephasing { p: 0.05 };
        let mut a = SyndromeSource::new(lattice(), noise, 42).unwrap();
        let mut b = SyndromeSource::new(lattice(), noise, 42).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_syndrome(), b.next_syndrome());
        }
        assert_eq!(a.rounds_emitted(), 50);
    }

    #[test]
    fn different_seeds_diverge() {
        let noise = NoiseSpec::PureDephasing { p: 0.1 };
        let mut a = SyndromeSource::new(lattice(), noise, 1).unwrap();
        let mut b = SyndromeSource::new(lattice(), noise, 2).unwrap();
        let distinct = (0..50).any(|_| a.next_syndrome() != b.next_syndrome());
        assert!(
            distinct,
            "independent seeds should not produce equal streams"
        );
    }

    #[test]
    fn syndromes_have_lattice_width() {
        let lat = lattice();
        let mut source =
            SyndromeSource::new(lat.clone(), NoiseSpec::Depolarizing { p: 0.02 }, 7).unwrap();
        let s = source.next_syndrome();
        assert_eq!(s.len(), lat.num_ancillas());
    }

    #[test]
    fn error_and_syndrome_stream_replays_the_syndrome_stream() {
        let noise = NoiseSpec::Depolarizing { p: 0.1 };
        let mut plain = SyndromeSource::new(lattice(), noise, 9).unwrap();
        let mut replay = SyndromeSource::new(lattice(), noise, 9).unwrap();
        for _ in 0..30 {
            let syndrome = plain.next_syndrome();
            let (error, replayed) = replay.next_error_and_syndrome();
            assert_eq!(replayed, syndrome);
            assert_eq!(replay.lattice().syndrome_of(&error), syndrome);
        }
        assert_eq!(plain.rounds_emitted(), replay.rounds_emitted());
    }

    #[test]
    fn invalid_probability_is_rejected() {
        assert!(SyndromeSource::new(lattice(), NoiseSpec::PureDephasing { p: 1.5 }, 0).is_err());
        assert!(SyndromeSource::new(lattice(), NoiseSpec::Depolarizing { p: -0.1 }, 0).is_err());
    }

    fn spec(distance: usize, seed: u64, rounds: u64, cadence_cycles: usize) -> LatticeSpec {
        let mut spec = LatticeSpec::new(distance);
        spec.seed = seed;
        spec.rounds = rounds;
        spec.cadence_cycles = cadence_cycles;
        spec
    }

    #[test]
    fn unpaced_streams_interleave_round_robin() {
        let set = LatticeSet::new(vec![spec(3, 1, 3, 0), spec(5, 2, 3, 0)]).unwrap();
        let mut source =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        assert_eq!(source.remaining(), 6);
        let order: Vec<(u32, u64)> = std::iter::from_fn(|| source.next_round())
            .map(|r| (r.lattice_id, r.round))
            .collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
        assert_eq!(source.remaining(), 0);
        assert!(source.next_round().is_none());
    }

    #[test]
    fn faster_cadence_emits_proportionally_more_rounds() {
        // Lattice 0 is due every 100 cycles, lattice 1 every 300: over the
        // first rounds, lattice 0 emits three rounds per lattice-1 round.
        let set = LatticeSet::new(vec![spec(3, 1, 9, 100), spec(3, 2, 3, 300)]).unwrap();
        let mut source =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        let first_eight: Vec<u32> = (0..8)
            .map(|_| source.next_round().unwrap().lattice_id)
            .collect();
        assert_eq!(
            first_eight.iter().filter(|&&id| id == 0).count(),
            6,
            "order was {first_eight:?}"
        );
        // Due times are monotone in each lattice's own round index.
        let mut last_due = [f64::NEG_INFINITY; 2];
        while let Some(round) = source.next_round() {
            assert!(round.due_ns >= last_due[round.lattice_id as usize]);
            last_due[round.lattice_id as usize] = round.due_ns;
        }
    }

    /// Interleaving is content-transparent: each lattice's rounds match a
    /// standalone seeded source over the same `(lattice, noise, seed)`.
    #[test]
    fn per_lattice_content_is_independent_of_interleaving() {
        let set = LatticeSet::new(vec![spec(3, 11, 5, 0), spec(5, 22, 7, 0)]).unwrap();
        let mut source =
            InterleavedSource::new(&set, &CycleTimeConverter::paper_reference()).unwrap();
        let mut per_lattice: Vec<Vec<Syndrome>> = vec![Vec::new(), Vec::new()];
        while let Some(round) = source.next_round() {
            assert_eq!(
                per_lattice[round.lattice_id as usize].len() as u64,
                round.round
            );
            per_lattice[round.lattice_id as usize].push(round.syndrome);
        }
        for (id, expected_rounds) in [(0usize, 5u64), (1, 7)] {
            let spec = set.spec(id);
            let mut reference =
                SyndromeSource::new(set.lattice(id).clone(), spec.noise, spec.seed).unwrap();
            assert_eq!(per_lattice[id].len() as u64, expected_rounds);
            for streamed in &per_lattice[id] {
                assert_eq!(streamed, &reference.next_syndrome());
            }
        }
    }

    #[test]
    fn noise_spec_reports_rate() {
        assert_eq!(
            NoiseSpec::PureDephasing { p: 0.03 }.physical_error_rate(),
            0.03
        );
        assert_eq!(
            NoiseSpec::Depolarizing { p: 0.01 }.physical_error_rate(),
            0.01
        );
    }
}
