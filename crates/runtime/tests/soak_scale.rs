//! Soak-scale regression suite: the streaming residual path against its
//! replay oracle, and the bounded-memory guarantees that make million-round
//! runs possible.
//!
//! * The equivalence property: a run classified *in stream* (workers tally
//!   residuals the moment corrections commit, the producer tallies shed
//!   rounds, nothing O(rounds) retained) must produce per-lattice
//!   [`ResidualReport`]s identical to the same run classified by the
//!   end-of-run replay oracle — across seeds, distances {3, 5, 7}, worker
//!   counts and Block/Drop push policies.  [`ResidualTally::absorb`] is an
//!   order-independent integer sum, so the merge order the scheduler
//!   happens to pick cannot show through.
//! * The memory property: growing a run 10× (20k → 200k rounds) must not
//!   grow the retained telemetry — timelines, correction history, journal,
//!   histograms and the serialized report all stay within a constant
//!   factor.

use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
use nisqplus_runtime::report::report_to_string;
use nisqplus_runtime::{
    FaultPlan, LatticeSpec, MachineConfig, NoiseSpec, PushPolicy, ResidualMode, RuntimeOutcome,
    StreamingEngine,
};
use proptest::prelude::*;

fn greedy() -> DynDecoder {
    Box::new(GreedyMatchingDecoder::new())
}

/// A three-lattice machine (d = 3, 5, 7) whose shedding is *deterministic*:
/// the ring is deep enough that the Drop policy never sheds from fullness,
/// and the only dropped rounds are the fault plan's corrupted records,
/// quarantined by whichever worker receives them no matter how the
/// scheduler interleaves.  That makes the streaming and replay runs decode
/// and shed exactly the same round sets, so their residual reports must
/// match exactly.
fn residual_config(
    mode: ResidualMode,
    policy: PushPolicy,
    seed: u64,
    workers: usize,
) -> MachineConfig {
    let mut config = MachineConfig::new(&[3, 5, 7], seed);
    for (i, spec) in config.lattices.iter_mut().enumerate() {
        *spec = LatticeSpec::new([3, 5, 7][i])
            .with_noise(NoiseSpec::PureDephasing { p: 0.04 })
            .with_seed(seed + i as u64)
            .with_rounds(40)
            .with_cadence_cycles(0);
    }
    config.workers = workers;
    config.queue_capacity = 512; // never fills: Drop cannot shed from fullness
    config.push_policy = policy;
    config.analyze_residuals = true;
    config.residual_mode = mode;
    config.record_corrections = true;
    if mode == ResidualMode::Streaming {
        // The soak-scale posture: prove equivalence holds with every
        // O(rounds) structure bounded away.
        config.correction_cap = Some(8);
        config.track_shed_rounds = false;
    }
    // Deterministic sheds: two poisoned wire records, quarantined and
    // counted as dropped in both runs.
    config.fault = FaultPlan::default()
        .corrupt_record(0, 2, 1, 3)
        .corrupt_record(2, 7, 0, 11);
    config
}

fn run(config: MachineConfig) -> RuntimeOutcome {
    StreamingEngine::with_machine(config)
        .expect("valid config")
        .run(&greedy)
}

fn assert_streaming_matches_replay(policy: PushPolicy, seed: u64, workers: usize) {
    let streaming = run(residual_config(
        ResidualMode::Streaming,
        policy,
        seed,
        workers,
    ));
    let replay = run(residual_config(ResidualMode::Replay, policy, seed, workers));
    for (s, r) in streaming
        .report
        .lattices
        .iter()
        .zip(replay.report.lattices.iter())
    {
        assert_eq!(
            s.residual, r.residual,
            "lattice {} (d={}, {policy:?}, seed {seed}, {workers} workers): \
             streaming residual report drifted from the replay oracle",
            s.lattice_id, s.distance
        );
        assert_eq!(s.counters.decoded, r.counters.decoded);
        assert_eq!(s.counters.dropped, r.counters.dropped);
        // The streaming run's live counters must agree with its own tally.
        let tally = s.residual.as_ref().expect("residuals on").total();
        assert_eq!(s.counters.live_failures(), tally.failures());
        // The replay run never touches the live counters.
        assert_eq!(r.counters.live_failures(), 0);
    }
    // Both runs conserved every round: generated == decoded + dropped.
    for report in [&streaming.report, &replay.report] {
        for lattice in &report.lattices {
            assert_eq!(
                lattice.counters.generated,
                lattice.counters.decoded + lattice.counters.dropped
            );
        }
    }
    // The streaming run kept only the capped correction ring; the replay
    // run needed the full history.
    assert!(streaming.corrections.len() <= 8 * workers.max(1) * 3);
    assert_eq!(
        replay.corrections.len() as u64,
        replay.report.counters.decoded
    );
}

#[test]
fn streaming_residuals_match_replay_under_block_policy() {
    assert_streaming_matches_replay(PushPolicy::Block, 2020, 2);
}

#[test]
fn streaming_residuals_match_replay_under_drop_policy() {
    assert_streaming_matches_replay(PushPolicy::Drop, 4242, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The full property: over random seeds, worker counts and both push
    /// policies, the streaming classification is indistinguishable from the
    /// replay oracle on every lattice of a mixed-distance machine.
    #[test]
    fn streaming_residuals_match_replay_for_any_seed(
        seed in 0u64..1_000,
        workers in 1usize..4,
        drop_policy in any::<bool>(),
    ) {
        let policy = if drop_policy { PushPolicy::Drop } else { PushPolicy::Block };
        assert_streaming_matches_replay(policy, seed, workers);
    }
}

/// One soak-postured run: streaming residuals, capped correction ring, no
/// shed-round lists, bounded timelines.  Returns the outcome and the size
/// of the serialized report — the end-to-end proxy for retained telemetry.
fn soak_postured_run(rounds_total: u64) -> (RuntimeOutcome, usize) {
    let mut config = MachineConfig::new(&[3, 3], 0xB0B);
    for spec in &mut config.lattices {
        spec.rounds = rounds_total / 2;
        spec.cadence_cycles = 0;
        spec.noise = NoiseSpec::PureDephasing { p: 0.03 };
    }
    config.workers = 2;
    config.queue_capacity = 256;
    config.analyze_residuals = true;
    config.record_corrections = true;
    config.correction_cap = Some(16);
    config.track_shed_rounds = false;
    config.max_depth_samples = 256;
    config.obs.snapshot_cadence_us = 0;
    let outcome = run(config);
    let json_len = report_to_string(&outcome.report).len();
    (outcome, json_len)
}

/// Growing the run 10× must leave every retained structure at its cap and
/// the serialized report within a constant factor — the memory regression
/// gate for soak scale.
#[test]
fn telemetry_memory_is_bounded_in_the_round_count() {
    let (small, small_len) = soak_postured_run(20_000);
    let (large, large_len) = soak_postured_run(200_000);
    // The correction history is a ring, not a log.
    assert!(small.corrections.len() <= 16 * 2);
    assert!(large.corrections.len() <= 16 * 2);
    for outcome in [&small, &large] {
        let report = &outcome.report;
        assert!(report.depth_timeline.len() <= 256 + 1);
        for lattice in &report.lattices {
            assert!(lattice.backlog_timeline.len() <= 256 + 1);
            // Streaming tallies classified every round without retaining any.
            let residual = lattice.residual.as_ref().expect("residuals on");
            assert_eq!(
                residual.total().rounds,
                lattice.counters.generated,
                "every generated round classified exactly once"
            );
        }
        assert_eq!(
            report.counters.generated,
            report.counters.decoded + report.counters.dropped
        );
    }
    // 10× the rounds, same retained telemetry: the serialized report may
    // drift a little (histogram shapes, bigger numbers print wider), but
    // must stay within a constant factor — O(rounds) retention would show
    // up as ~10×.
    assert!(
        (large_len as f64) < 2.0 * small_len as f64,
        "200k-round report serialized to {large_len} bytes vs {small_len} at 20k — \
         telemetry is growing with the round count"
    );
}
