//! Scenario-plane integration tests: the golden-trace regression suite and
//! the elastic-machine edge cases.
//!
//! The golden traces under `tests/traces/` are recorded runs of small but
//! scenario-rich machines (burst episodes, drifting noise, scripted
//! add/retire/re-tune).  Each file pins the reference outcome — counters,
//! per-lattice shed counts, merged-frame digests, residual tallies — as a
//! [`GoldenSummary`]; replaying the trace through today's pipeline must
//! reproduce every pinned quantity exactly.  Any change that perturbs
//! routing, decoding, frame commits or residual classification on a recorded
//! stream fails here byte-for-byte, not statistically.
//!
//! Regenerate the corpus (after an *intentional* stream-shape change) with:
//!
//! ```text
//! NISQ_TRACE_REGEN=1 cargo test -p nisqplus-runtime --test scenario
//! ```
//!
//! Regeneration self-checks: the live run is replayed before the file is
//! written, and the two outcomes must already agree.

use nisqplus_decoders::{DecoderFactory, DynDecoder, GreedyMatchingDecoder};
use nisqplus_qec::error_model::{BurstEvent, DriftingErrorModel};
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_runtime::{
    golden_summary, record_run, replay_run, MachineConfig, NoiseSpec, PacketCodec, PacketError,
    PushPolicy, ScenarioScript, StreamingEngine, SyndromePacket, SyndromeTrace,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn greedy_factory() -> impl DecoderFactory {
    || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
}

/// A deterministic scenario machine: un-paced, blocking backpressure, ample
/// ring capacity, streaming residual classification.  Shed decisions are
/// timing-dependent, so golden configurations must be shed-free by
/// construction.
fn scenario_machine(distances: &[usize], rounds: u64, base_seed: u64) -> MachineConfig {
    let mut config = MachineConfig::new(distances, base_seed);
    for spec in &mut config.lattices {
        spec.rounds = rounds;
        spec.cadence_cycles = 0;
    }
    config.workers = 2;
    config.queue_capacity = 1024;
    config.push_policy = PushPolicy::Block;
    config.analyze_residuals = true;
    config
}

/// Golden case 1: a d=3 patch riding out a 6× burst episode mid-stream.
fn d3_burst_machine() -> MachineConfig {
    let mut config = scenario_machine(&[3], 64, 41);
    config.lattices[0].noise = NoiseSpec::PureDephasing { p: 0.02 };
    config.lattices[0].burst = Some(BurstEvent::new(12, 10, 6.0).expect("valid burst").into());
    config
}

/// Golden case 2: a d=5 patch under sinusoidally drifting dephasing.
fn d5_drift_machine() -> MachineConfig {
    let mut config = scenario_machine(&[5], 48, 97);
    config.lattices[0].noise = NoiseSpec::Drifting {
        model: DriftingErrorModel::sinusoid(0.015, 0.01, 16.0).expect("valid drift"),
    };
    config
}

/// Golden case 3: an elastic two-patch machine — the d=5 patch hot-added at
/// global round 12, the d=3 patch re-tuned at 24 and retired at 48, with a
/// burst and a ramp drift layered on top.
fn d3d5_elastic_machine() -> MachineConfig {
    let mut config = scenario_machine(&[3, 5], 40, 2020);
    config.lattices[0].noise = NoiseSpec::PureDephasing { p: 0.03 };
    config.lattices[0].burst = Some(BurstEvent::new(5, 8, 3.0).expect("valid burst").into());
    config.lattices[1].noise = NoiseSpec::Drifting {
        model: DriftingErrorModel::ramp(0.01, 0.0005).expect("valid drift"),
    };
    config.scenario = ScenarioScript::default()
        .add_lattice(12, 1)
        .set_error_rate(24, 0, NoiseSpec::Depolarizing { p: 0.05 })
        .retire_lattice(48, 0);
    config
}

/// The committed golden corpus: `(file_stem, machine)` pairs.
fn golden_cases() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("d3_burst", d3_burst_machine()),
        ("d5_drift", d5_drift_machine()),
        ("d3d5_elastic", d3d5_elastic_machine()),
    ]
}

fn trace_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/traces")).join(format!("{name}.json"))
}

/// Records `config` live, pins its outcome, self-checks the replay, and
/// writes the trace file.
fn regenerate(name: &str, config: &MachineConfig) -> SyndromeTrace {
    let engine = StreamingEngine::with_machine(config.clone()).expect("valid golden machine");
    let outcome = record_run(&engine, &greedy_factory());
    let golden = golden_summary(&outcome);
    let trace = outcome
        .trace
        .expect("record_run records a trace")
        .with_golden(golden.clone());
    let replay_engine =
        StreamingEngine::with_machine(config.clone()).expect("valid golden machine");
    let replayed = replay_run(&replay_engine, &trace, &greedy_factory());
    assert_eq!(
        golden_summary(&replayed),
        golden,
        "golden case {name}: replay diverged from the live run it was recorded from"
    );
    trace
        .write_to(trace_path(name))
        .expect("golden trace written");
    trace
}

/// The golden-trace regression suite: every committed trace replays to its
/// pinned summary exactly.  Set `NISQ_TRACE_REGEN=1` to re-record the corpus
/// instead (the regenerated files must then be committed).
#[test]
fn golden_traces_replay_to_their_pinned_summaries() {
    let regen = std::env::var_os("NISQ_TRACE_REGEN").is_some();
    for (name, config) in golden_cases() {
        let trace = if regen {
            regenerate(name, &config)
        } else {
            SyndromeTrace::read_from(trace_path(name)).unwrap_or_else(|err| {
                panic!(
                    "golden trace {name} unreadable ({err}); regenerate the corpus with \
                     NISQ_TRACE_REGEN=1 and commit the files"
                )
            })
        };
        let golden = trace
            .golden
            .clone()
            .unwrap_or_else(|| panic!("golden trace {name} carries no pinned summary"));
        let engine = StreamingEngine::with_machine(config).expect("valid golden machine");
        let outcome = replay_run(&engine, &trace, &greedy_factory());
        assert_eq!(
            golden_summary(&outcome),
            golden,
            "golden trace {name}: replay no longer reproduces the pinned outcome"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replaying a trace is byte-equivalent to the live run that recorded
    /// it — for any seed, not just the pinned corpus.
    #[test]
    fn recorded_runs_replay_identically(seed in 0u64..1_000) {
        let mut config = scenario_machine(&[3], 32, seed);
        config.lattices[0].noise = NoiseSpec::Depolarizing { p: 0.04 };
        let engine = StreamingEngine::with_machine(config.clone()).unwrap();
        let live = record_run(&engine, &greedy_factory());
        let trace = live.trace.clone().expect("record_run records a trace");
        prop_assert_eq!(trace.len() as u64, live.report.counters.generated);

        let replay_engine = StreamingEngine::with_machine(config).unwrap();
        let replayed = replay_run(&replay_engine, &trace, &greedy_factory());
        prop_assert_eq!(golden_summary(&replayed), golden_summary(&live));
        prop_assert_eq!(
            replayed.report.counters.decoded,
            live.report.counters.decoded
        );
    }
}

/// A record claiming a round at or past a lattice's retirement watermark is
/// quarantined as a *typed* error — never a panic — while earlier in-flight
/// rounds still verify and drain.
#[test]
fn straggler_records_for_retired_lattices_are_quarantined_as_typed_errors() {
    let codec = PacketCodec::for_lattice_bits(&[8, 8]);
    let syndrome = Syndrome::new(8);
    let mut record = vec![0u64; codec.words_per_packet()];
    codec.encode(&SyndromePacket::new(1, 7, 0, &syndrome), &mut record);
    assert!(codec.verify(&record).is_ok(), "live lattices verify freely");

    codec.retire_lattice(1, 5);
    assert_eq!(
        codec.verify(&record),
        Err(PacketError::RetiredLattice {
            lattice_id: 1,
            round: 7,
            final_round: 5,
        })
    );

    // The in-flight backlog (rounds below the watermark) still drains.
    codec.encode(&SyndromePacket::new(1, 4, 0, &syndrome), &mut record);
    assert_eq!(codec.verify(&record), Ok(1));
    // The sibling lattice is untouched.
    codec.encode(&SyndromePacket::new(0, 7, 0, &syndrome), &mut record);
    assert_eq!(codec.verify(&record), Ok(0));
}

/// A mid-run scripted retirement truncates the stream, journals the event,
/// and quarantines nothing: every round emitted before the watermark drains
/// to the final frame.
#[test]
fn scripted_retirement_truncates_the_stream_and_drains_cleanly() {
    let mut config = scenario_machine(&[3, 3], 32, 7);
    config.scenario = ScenarioScript::default().retire_lattice(20, 1);
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    let report = &outcome.report;

    let survivor = &report.lattices[0];
    let retired = &report.lattices[1];
    assert_eq!(survivor.rounds, 32, "the surviving lattice streams in full");
    assert!(
        retired.rounds < 32,
        "retirement must truncate the stream (streamed {})",
        retired.rounds
    );
    assert_eq!(report.counters.generated, 32 + retired.rounds);
    assert_eq!(report.counters.decoded, report.counters.generated);
    assert_eq!(report.counters.quarantined, 0, "a drain is not a fault");
    assert_eq!(report.journal.counts.lattice_retired, 1);
    assert_eq!(report.journal.counts.lattice_added, 0);
    assert_eq!(
        outcome.frames[1].total_recorded(),
        retired.rounds,
        "every pre-watermark round reaches the final frame"
    );
}

/// A hot-added lattice of a distance no worker has decoded yet comes online
/// cleanly: decoders prepare lazily on the slot's first record.
#[test]
fn hot_added_lattice_of_unprepared_distance_comes_online() {
    let mut config = scenario_machine(&[3, 5], 24, 13);
    config.scenario = ScenarioScript::default().add_lattice(16, 1);
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    let report = &outcome.report;

    let added = &report.lattices[1];
    assert_eq!(
        added.rounds, 24,
        "a hot-added lattice streams its full configured rounds"
    );
    assert_eq!(report.counters.generated, 48);
    assert_eq!(report.counters.decoded, 48);
    assert_eq!(report.counters.quarantined, 0);
    assert_eq!(report.journal.counts.lattice_added, 1);
    assert_eq!(outcome.frames[1].total_recorded(), 24);
}

/// The degenerate script rounds: an `AddLattice` at round 0 is
/// indistinguishable from a statically live lattice, and a `RetireLattice`
/// at the machine's final round fires on the terminal poll without
/// truncating anything.
#[test]
fn add_at_round_zero_and_retire_at_final_round_are_clean_boundaries() {
    let mut config = scenario_machine(&[3, 3], 16, 23);
    config.scenario = ScenarioScript::default()
        .add_lattice(0, 1)
        .retire_lattice(32, 0);
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    let report = &outcome.report;

    assert_eq!(report.lattices[0].rounds, 16);
    assert_eq!(report.lattices[1].rounds, 16);
    assert_eq!(report.counters.generated, 32);
    assert_eq!(report.counters.decoded, 32);
    assert_eq!(report.counters.quarantined, 0);
    assert_eq!(report.journal.counts.lattice_added, 1);
    assert_eq!(report.journal.counts.lattice_retired, 1);
}

/// A scripted re-tune cuts the lattice's noise timeline into epochs at the
/// firing round, with each epoch reporting its own regime.
#[test]
fn scripted_retune_cuts_noise_epochs() {
    let mut config = scenario_machine(&[3], 32, 5);
    config.lattices[0].noise = NoiseSpec::PureDephasing { p: 0.02 };
    config.scenario =
        ScenarioScript::default().set_error_rate(16, 0, NoiseSpec::PureDephasing { p: 0.08 });
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&greedy_factory());

    let epochs = &outcome.report.lattices[0].noise_epochs;
    assert_eq!(epochs.len(), 2, "one cut at the scripted re-tune");
    assert_eq!(epochs[0].start_round, 0);
    assert_eq!(epochs[0].end_round, epochs[1].start_round);
    assert_eq!(epochs[1].end_round, 32);
    assert!((epochs[0].mean_rate - 0.02).abs() < 1e-12);
    assert!((epochs[1].mean_rate - 0.08).abs() < 1e-12);
}
