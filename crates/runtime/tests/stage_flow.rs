//! Credit-flow tests for the stage layer: the flow-control behaviour the
//! paper assumes of hardware, pinned at the seams the software pipeline is
//! built from.  Exhaustion/replenish on the channel credit loop, lossless
//! skid buffering under stall, mux fairness under asymmetric load — and a
//! property test driving a miniature source→gate→skid→channel→consumer
//! graph through random stall schedules, asserting no lattice's rounds are
//! ever dropped or reordered.

use nisqplus_runtime::stage::{
    Admission, BatchMux, CreditChannel, PriorityMux, QosGate, RoundRobinMux, SkidBuffer, StealMux,
};
use nisqplus_runtime::{LatticeSet, LatticeSpec, MachineConfig, PushPolicy};
use proptest::prelude::*;

/// A gate over `lattices` identical Block-policy d=3 lanes, each with the
/// given outstanding budget.
fn block_gate(lattices: usize, budget: Option<usize>) -> QosGate {
    let specs: Vec<LatticeSpec> = (0..lattices)
        .map(|i| {
            let mut spec = LatticeSpec::new(3);
            spec.rounds = 16;
            spec.seed = i as u64;
            spec.queue_budget = budget;
            spec
        })
        .collect();
    let config = MachineConfig {
        lattices: specs,
        push_policy: PushPolicy::Block,
        ..MachineConfig::new(&[3], 0)
    };
    let set = LatticeSet::new(config.lattices.clone()).unwrap();
    QosGate::for_machine(&config, &set)
}

/// Channel credits exhaust at capacity, refuse without losing anything, and
/// replenish exactly once per receive.
#[test]
fn channel_credits_exhaust_and_replenish() {
    let channel = CreditChannel::new(3, 1);
    for value in 0..3u64 {
        assert!(channel.try_send(&[value]));
    }
    assert_eq!(channel.credits().available(), 0);
    assert!(!channel.try_send(&[99]), "no credit, send refused");
    assert!(!channel.try_send(&[99]));
    let mut out = [0u64];
    assert!(channel.try_recv(&mut out));
    assert_eq!(out, [0]);
    assert_eq!(channel.credits().available(), 1, "one credit came home");
    assert!(channel.try_send(&[3]), "replenished credit accepted a send");
    // Drain; the refused sends never entered the stream.
    let mut seen = Vec::new();
    while channel.try_recv(&mut out) {
        seen.push(out[0]);
    }
    assert_eq!(seen, vec![1, 2, 3]);
    let report = channel.report("channel.0");
    assert_eq!(report.accepted, 4);
    assert_eq!(report.emitted, 4);
    assert_eq!(report.rejected, 2);
    assert_eq!(report.credits_consumed, report.credits_issued);
}

/// The gate's budget credit spans admission to commit: it is consumed when
/// a round is admitted, held while the round sits in the channel, and only
/// returns when the consumer commits the decode.
#[test]
fn gate_budget_credit_spans_admission_to_commit() {
    let gate = block_gate(1, Some(2));
    let channel = CreditChannel::new(8, 1);
    assert_eq!(gate.admit(0), Admission::Granted);
    assert!(channel.try_send(&[0]));
    assert_eq!(gate.admit(0), Admission::Granted);
    assert!(channel.try_send(&[1]));
    // Budget exhausted while both rounds are in flight — the channel having
    // free slots does not matter.
    assert_eq!(gate.admit(0), Admission::Blocked);
    assert_eq!(gate.outstanding(0), 2);
    // The consumer pops one round; the credit is still out until commit.
    let mut out = [0u64];
    assert!(channel.try_recv(&mut out));
    assert_eq!(gate.admit(0), Admission::Blocked);
    gate.credit_decode(0);
    assert_eq!(gate.outstanding(0), 1);
    assert_eq!(gate.admit(0), Admission::Granted);
    let report = gate.report("gate");
    assert_eq!(report.accepted, 3);
    assert_eq!(report.stall_cycles, 2);
}

/// A skid in front of a one-slot channel: the consumer stalls on a rude
/// on/off pattern, and every record still arrives exactly once, in order.
#[test]
fn skid_buffer_loses_nothing_into_a_stalled_channel() {
    let channel = CreditChannel::new(1, 1);
    let mut skid: SkidBuffer<Vec<u64>> = SkidBuffer::new(2);
    let mut received = Vec::new();
    let mut next = 0u64;
    let mut out = [0u64];
    for step in 0..200 {
        // Source: emit whenever the skid has room (a refused accept builds
        // nothing, so the value is simply re-offered next step).
        if skid.accept_with(|slot| {
            slot.clear();
            slot.push(next);
        }) {
            next += 1;
        }
        // Consumer side: ready only two steps out of three.
        if step % 3 != 0 {
            skid.drain_with(|record| channel.try_send(record));
            if channel.try_recv(&mut out) {
                received.push(out[0]);
            }
        }
    }
    // Drain everything left.
    loop {
        skid.drain_with(|record| channel.try_send(record));
        if channel.try_recv(&mut out) {
            received.push(out[0]);
        } else if skid.is_empty() {
            break;
        }
    }
    assert!(!received.is_empty());
    assert_eq!(
        received,
        (0..received.len() as u64).collect::<Vec<u64>>(),
        "no loss, no reorder, no duplication"
    );
    assert_eq!(channel.credits().available(), 1);
}

/// Round-robin mux fairness: a light channel beside a heavy one still gets
/// every other grant, so asymmetric load cannot starve it.
#[test]
fn round_robin_mux_is_fair_under_asymmetric_load() {
    let channels = [CreditChannel::new(32, 1), CreditChannel::new(32, 1)];
    for value in 0..12u64 {
        assert!(channels[0].try_send(&[value]));
    }
    for value in 100..103u64 {
        assert!(channels[1].try_send(&[value]));
    }
    let mut mux = RoundRobinMux::new();
    let mut batch: Vec<Vec<u64>> = (0..6).map(|_| vec![0u64]).collect();
    let fill = mux.fill(&channels, &mut batch);
    assert_eq!(fill.filled, 6);
    let light: Vec<usize> = batch
        .iter()
        .take(fill.filled)
        .enumerate()
        .filter(|(_, record)| record[0] >= 100)
        .map(|(slot, _)| slot)
        .collect();
    // The light channel's records occupy alternating slots of the first
    // batch instead of waiting behind the heavy channel's twelve.
    assert_eq!(light, vec![1, 3, 5]);
}

/// Priority mux strictness: while the high-priority channel has records,
/// the low-priority one is never granted.
#[test]
fn priority_mux_starves_low_priority_while_high_is_busy() {
    let channels = [CreditChannel::new(32, 1), CreditChannel::new(32, 1)];
    for value in 0..4u64 {
        assert!(channels[0].try_send(&[value]));
        assert!(channels[1].try_send(&[100 + value]));
    }
    let mut mux = PriorityMux::new();
    let mut batch: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64]).collect();
    let fill = mux.fill(&channels, &mut batch);
    assert_eq!(fill.filled, 4);
    assert!(
        batch.iter().all(|record| record[0] < 100),
        "high-priority drains first"
    );
    let fill = mux.fill(&channels, &mut batch);
    assert_eq!(fill.filled, 4);
    assert!(
        batch.iter().all(|record| record[0] >= 100),
        "low-priority only once high is dry"
    );
}

/// Steal mux accounting: a worker whose home channel is dry takes a whole
/// batch from the neighbour and counts every record as stolen.
#[test]
fn steal_mux_counts_every_foreign_record() {
    let channels = [CreditChannel::new(32, 1), CreditChannel::new(32, 1)];
    for value in 0..3u64 {
        assert!(channels[1].try_send(&[value]));
    }
    let mut mux = StealMux::new(0);
    let mut batch: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64]).collect();
    let fill = mux.fill(&channels, &mut batch);
    assert_eq!(fill.filled, 3);
    assert_eq!(fill.stolen, 3);
    // Home traffic is never "stolen".
    assert!(channels[0].try_send(&[9]));
    let fill = mux.fill(&channels, &mut batch);
    assert_eq!(fill.filled, 1);
    assert_eq!(fill.stolen, 0);
}

/// One deterministic step of the miniature stage graph used by the
/// property test below.
struct MiniGraph {
    gate: QosGate,
    channel: CreditChannel,
    skid: SkidBuffer<Vec<u64>>,
    /// Per-lattice next round to emit.
    next_round: Vec<u64>,
    rounds_per_lattice: u64,
    /// The round resting in the skid, if any: `(lattice, admitted)`.
    pending: Option<(usize, bool)>,
    /// Which lattice emits next (sources interleave round-robin).
    turn: usize,
    /// Per-lattice rounds received, in arrival order.
    received: Vec<Vec<u64>>,
}

impl MiniGraph {
    fn new(lattices: usize, rounds_per_lattice: u64, capacity: usize, budget: usize) -> Self {
        MiniGraph {
            gate: block_gate(lattices, Some(budget)),
            channel: CreditChannel::new(capacity, 2),
            skid: SkidBuffer::new(1),
            next_round: vec![0; lattices],
            rounds_per_lattice,
            pending: None,
            turn: 0,
            received: vec![Vec::new(); lattices],
        }
    }

    /// The source side makes whatever progress backpressure allows: stage a
    /// round into the skid, win admission, drain into the channel.
    fn step_source(&mut self) {
        if self.pending.is_none() {
            // Pick the next lattice with rounds left, round-robin.
            let lattices = self.next_round.len();
            for offset in 0..lattices {
                let lattice = (self.turn + offset) % lattices;
                if self.next_round[lattice] < self.rounds_per_lattice {
                    let round = self.next_round[lattice];
                    let loaded = self.skid.accept_with(|slot| {
                        slot.clear();
                        slot.extend_from_slice(&[lattice as u64, round]);
                    });
                    assert!(loaded, "the one-slot skid is empty between rounds");
                    self.next_round[lattice] += 1;
                    self.pending = Some((lattice, false));
                    self.turn = lattice + 1;
                    break;
                }
            }
        }
        let Some((lattice, admitted)) = self.pending else {
            return;
        };
        let admitted = admitted || {
            match self.gate.admit(lattice) {
                Admission::Granted => true,
                Admission::Blocked => false,
                Admission::Shed => unreachable!("Block lanes never shed"),
            }
        };
        self.pending = Some((lattice, admitted));
        if admitted && self.skid.drain_with(|record| self.channel.try_send(record)) == 1 {
            self.pending = None;
        }
    }

    /// The consumer pops up to `take` rounds and commits them.
    fn step_consumer(&mut self, take: usize) {
        let mut out = [0u64; 2];
        for _ in 0..take {
            if !self.channel.try_recv(&mut out) {
                break;
            }
            let lattice = out[0] as usize;
            self.received[lattice].push(out[1]);
            self.gate.credit_decode(lattice);
        }
    }

    fn done(&self) -> bool {
        self.pending.is_none()
            && self.channel.is_empty()
            && self
                .next_round
                .iter()
                .all(|&next| next == self.rounds_per_lattice)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random stall schedules against the miniature stage graph: however
    /// the consumer stalls and whatever the channel capacity and per-lane
    /// budget, every lattice's rounds arrive exactly once, in order.
    #[test]
    fn stall_schedules_never_drop_or_reorder_rounds(
        schedule in proptest::collection::vec(any::<bool>(), 30..240),
        lattices in 1usize..4,
        capacity in 1usize..5,
        budget in 1usize..4,
    ) {
        let rounds_per_lattice = (schedule.len() / (3 * lattices)).max(2) as u64;
        let mut graph = MiniGraph::new(lattices, rounds_per_lattice, capacity, budget);
        for ready in schedule {
            graph.step_source();
            if ready {
                graph.step_consumer(2);
            }
        }
        // The schedule is over: drain with an always-ready consumer.
        let mut safety = 0;
        while !graph.done() {
            graph.step_source();
            graph.step_consumer(2);
            safety += 1;
            prop_assert!(safety < 100_000, "graph failed to quiesce");
        }
        for (lattice, received) in graph.received.iter().enumerate() {
            prop_assert_eq!(
                received,
                &(0..rounds_per_lattice).collect::<Vec<u64>>(),
                "lattice {} lost or reordered rounds",
                lattice
            );
            prop_assert_eq!(graph.gate.outstanding(lattice), 0);
        }
        // Every credit is home on every loop.
        prop_assert_eq!(graph.channel.credits().available() as usize, capacity);
        let channel_report = graph.channel.report("channel");
        prop_assert_eq!(channel_report.credits_consumed, channel_report.credits_issued);
        let skid_report = graph.skid.report("skid");
        prop_assert_eq!(skid_report.accepted, skid_report.emitted);
        prop_assert_eq!(skid_report.rejected, 0);
    }
}
