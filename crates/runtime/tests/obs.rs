//! Integration tests of the live observability plane: histogram accuracy
//! against exact quantiles, JSON export round trips on real runs, bounded
//! timelines, and observer/journal agreement.

use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder, UnionFindDecoder};
use nisqplus_runtime::report::{report_from_str, report_to_string};
use nisqplus_runtime::{
    ExportError, LatticeSpec, LogHistogram, MachineConfig, MetricsSnapshot, NoiseSpec,
    PipelineOptions, PushPolicy, RuntimeConfig, RuntimeEvent, RuntimeObserver, StreamingEngine,
    ThrottledDecoder, SCHEMA_VERSION,
};
use std::sync::atomic::{AtomicU64, Ordering};

fn greedy_factory() -> impl nisqplus_decoders::traits::DecoderFactory {
    || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
}

/// A deterministic 64-bit xorshift so the quantile comparison is pinned
/// without depending on the vendored rand shim's limited surface.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The log-bucket histogram's quantiles agree with the exact order
/// statistics of the same sample set to within the promised resolution —
/// one bucket width at the quantile — across a heavy-tailed, multi-octave
/// pinned-seed distribution.
#[test]
fn histogram_quantiles_match_exact_order_statistics_within_one_bucket() {
    let hist = LogHistogram::new();
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let mut exact: Vec<u64> = Vec::with_capacity(20_000);
    for _ in 0..20_000 {
        // Latency-shaped: a few hundred ns base, an occasional 100x tail.
        let base = 200 + rng.next() % 2_000;
        let value = if rng.next() % 50 == 0 {
            base * 100
        } else {
            base
        };
        hist.record(value);
        exact.push(value);
    }
    exact.sort_unstable();
    let snapshot = hist.snapshot();
    assert_eq!(snapshot.count, 20_000);
    for q in [0.5, 0.9, 0.99, 0.999] {
        let rank = (q * exact.len() as f64).ceil().max(1.0) as usize;
        let exact_q = exact[rank.min(exact.len()) - 1] as f64;
        let approx_q = snapshot.quantile_ns(q);
        let resolution = snapshot.quantile_resolution_ns(q);
        assert!(
            (approx_q - exact_q).abs() <= resolution,
            "p{}: histogram {approx_q} vs exact {exact_q} exceeds one bucket ({resolution})",
            q * 100.0
        );
    }
    // The extrema are tracked exactly, not bucketed.
    assert_eq!(snapshot.min_ns, exact[0]);
    assert_eq!(snapshot.max_ns, *exact.last().unwrap());
}

/// A real multi-lattice QoS run (Drop + Block lanes, shed rounds, journal
/// events, sampler snapshots) survives the JSON export round trip exactly,
/// and a bumped `schema_version` is rejected on the way back in.
#[test]
fn multi_lattice_qos_report_round_trips_through_json() {
    let mut config = MachineConfig::new(&[3, 3], 77);
    config.lattices = vec![
        LatticeSpec::new(3)
            .with_noise(NoiseSpec::PureDephasing { p: 0.02 })
            .with_seed(77)
            .with_rounds(300)
            .with_push_policy(PushPolicy::Drop)
            .with_queue_budget(2)
            .with_shed_slo(0.05),
        LatticeSpec::new(3)
            .with_noise(NoiseSpec::PureDephasing { p: 0.02 })
            .with_seed(78)
            .with_rounds(300),
    ];
    config.workers = 2;
    config.queue_capacity = 64;
    config.analyze_residuals = true;
    config.obs.snapshot_cadence_us = 100;
    let engine = StreamingEngine::with_machine(config).unwrap();
    // Throttle so the Drop lane's 2-round budget actually refuses rounds.
    let outcome = engine
        .run(&|| Box::new(ThrottledDecoder::new(UnionFindDecoder::new(), 20_000)) as DynDecoder);
    let report = &outcome.report;
    assert!(report.counters.dropped > 0, "Drop lane must shed");
    assert_eq!(report.journal.counts.shed, report.counters.dropped);
    assert!(!report.metrics.is_empty());

    // Streaming residuals (the default mode) moved the live per-lattice
    // failure counters; the round trip below must carry them.
    let live_failures: u64 = report
        .lattices
        .iter()
        .map(|l| l.counters.live_failures())
        .sum();
    assert!(
        live_failures > 0,
        "a 600-round p=0.02 run must flag some residual failures live"
    );

    let text = report_to_string(report);
    let reloaded = report_from_str(&text).expect("round trip");
    assert_eq!(&reloaded, report, "JSON must round-trip bit-for-bit");
    let reloaded_failures: u64 = reloaded
        .lattices
        .iter()
        .map(|l| l.counters.live_failures())
        .sum();
    assert_eq!(reloaded_failures, live_failures);

    // A document from a future schema is refused, loudly and typed.
    let bumped = text.replacen(
        &format!("\"schema_version\": {SCHEMA_VERSION}"),
        &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
        1,
    );
    assert_ne!(bumped, text, "the header must be present to bump");
    match report_from_str(&bumped) {
        Err(ExportError::Version { found, expected }) => {
            assert_eq!(found, SCHEMA_VERSION + 1);
            assert_eq!(expected, SCHEMA_VERSION);
        }
        other => panic!("bumped schema must fail with Version, got {other:?}"),
    }
}

/// The sampler thread observes the run from the side: snapshots are
/// monotonically sequenced, within the configured bound, and the registry
/// names every stage of the pipeline.
#[test]
fn sampler_snapshots_and_registry_cover_the_run() {
    let mut config = RuntimeConfig::new(3);
    config.rounds = 2_000;
    config.workers = 2;
    config.cadence_cycles = RuntimeConfig::PAPER_CADENCE_CYCLES * 25;
    let mut machine: MachineConfig = config.into();
    machine.obs.snapshot_cadence_us = 200;
    machine.obs.max_snapshots = 64;
    let engine = StreamingEngine::with_machine(machine).unwrap();
    let outcome = engine.run(&greedy_factory());
    let report = &outcome.report;

    let snapshots = &report.snapshots;
    assert!(!snapshots.is_empty(), "a paced 20 ms run must be sampled");
    assert!(snapshots.len() <= 64, "the snapshot log is bounded");
    for pair in snapshots.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "snapshots are sequenced");
        assert!(pair[1].elapsed_ns >= pair[0].elapsed_ns);
    }
    let last = snapshots.last().unwrap();
    assert!(last.decode_p999_ns >= last.decode_p99_ns);
    assert!(last.decode_p99_ns >= last.decode_p50_ns);

    // Every pipeline stage registered its counters by name.
    let names: Vec<&str> = report.metrics.iter().map(|m| m.name.as_str()).collect();
    for stage in [
        "source",
        "gate",
        "skid",
        "depth",
        "channel.0",
        "decode.0",
        "sink.0",
    ] {
        let name = format!("stage.{stage}.accepted");
        assert!(names.contains(&name.as_str()), "registry missing {name}");
    }
    // Registry totals agree with the stage reports assembled at shutdown.
    let gate_accepted = report
        .metrics
        .iter()
        .find(|m| m.name == "stage.gate.accepted")
        .expect("gate metric")
        .value;
    assert_eq!(gate_accepted, 2_000);
}

/// `max_depth_samples` is a hard cap even when the stream is much longer
/// than the stride assumed at construction.
#[test]
fn depth_timeline_respects_the_configured_cap() {
    let mut config = RuntimeConfig::new(3);
    config.rounds = 20_000;
    config.workers = 2;
    config.cadence_cycles = 0;
    config.queue_capacity = 256;
    config.max_depth_samples = 32;
    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    let timeline = &outcome.report.depth_timeline;
    assert!(!timeline.is_empty());
    assert!(
        timeline.len() <= 33,
        "cap 32 (+1 slack) exceeded: {} samples",
        timeline.len()
    );
    for pair in timeline.windows(2) {
        assert!(pair[1].round > pair[0].round, "timeline stays ordered");
    }
    // The per-lattice slices stay aligned with the capped aggregate.
    assert_eq!(
        outcome.report.lattices[0].backlog_timeline.len(),
        timeline.len()
    );
}

/// An installed observer sees exactly what the journal records: the same
/// event count, and every sampler snapshot.
#[test]
fn observer_sees_every_event_and_snapshot() {
    static EVENTS: AtomicU64 = AtomicU64::new(0);
    static SNAPSHOTS: AtomicU64 = AtomicU64::new(0);

    #[derive(Debug)]
    struct StaticObserver;
    impl RuntimeObserver for StaticObserver {
        fn on_event(&self, _event: &RuntimeEvent) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        fn on_snapshot(&self, _snapshot: &MetricsSnapshot) {
            SNAPSHOTS.fetch_add(1, Ordering::Relaxed);
        }
    }

    let mut config = RuntimeConfig::new(3);
    config.rounds = 400;
    config.workers = 1;
    config.cadence_cycles = 0;
    config.queue_capacity = 4;
    config.push_policy = PushPolicy::Drop;
    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run_with(
        PipelineOptions {
            observer: Some(Box::new(StaticObserver)),
            ..PipelineOptions::default()
        },
        &|| Box::new(ThrottledDecoder::new(UnionFindDecoder::new(), 30_000)) as DynDecoder,
    );
    let report = &outcome.report;
    assert!(report.counters.dropped > 0, "tiny Drop ring must shed");
    assert_eq!(
        EVENTS.load(Ordering::Relaxed),
        report.journal.published,
        "observer and journal must agree on the event count"
    );
    assert_eq!(
        SNAPSHOTS.load(Ordering::Relaxed),
        report.snapshots.len() as u64,
        "observer and snapshot log must agree"
    );
}
