//! Per-lattice QoS integration tests: mixed push policies, per-lattice
//! queue budgets, heterogeneous decoder assignment, shed-rate SLO verdicts,
//! and the end-of-run residual analysis that prices load shedding in
//! logical errors.
//!
//! The contract under test: each lattice's QoS fields are honoured
//! *independently* — a `Drop` patch sheds under overload while a `Block`
//! neighbour stays lossless on the same rings and workers — and everything
//! shed is accounted for: per-lattice `dropped` counters reconcile with
//! `MeasuredBacklog::shed`, shed rounds enter the frame path as identity
//! corrections, and the residual analysis reports what those identities cost
//! in logical errors.

use nisqplus_decoders::{
    Decoder, DecoderFactory, DynDecoder, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_runtime::{
    LatticeSpec, MachineConfig, NoiseSpec, PushPolicy, RuntimeOutcome, StreamingEngine,
    SyndromeSource, ThrottledDecoder,
};

/// A throttled greedy factory: slow enough that an un-paced producer
/// outruns the pool, fast enough to keep the tests quick.
fn slow_factory(floor_ns: u64) -> impl DecoderFactory {
    move || {
        Box::new(ThrottledDecoder::new(
            GreedyMatchingDecoder::new(),
            floor_ns,
        )) as DynDecoder
    }
}

fn unpaced_spec(distance: usize, seed: u64, rounds: u64) -> LatticeSpec {
    LatticeSpec::new(distance)
        .with_noise(NoiseSpec::Depolarizing { p: 0.05 })
        .with_seed(seed)
        .with_rounds(rounds)
        .with_cadence_cycles(0)
}

fn machine_of(lattices: Vec<LatticeSpec>) -> MachineConfig {
    let mut config = MachineConfig::new(&[3], 0);
    config.lattices = lattices;
    config.workers = 1;
    config.queue_capacity = 512;
    config.push_policy = PushPolicy::Block;
    config
}

/// Aggregate flow counters must equal the sum of the per-lattice slices.
fn assert_aggregate_equals_sum(outcome: &RuntimeOutcome) {
    let agg = outcome.report.counters;
    let lattices = &outcome.report.lattices;
    assert_eq!(
        agg.generated,
        lattices.iter().map(|l| l.counters.generated).sum::<u64>()
    );
    assert_eq!(
        agg.enqueued,
        lattices.iter().map(|l| l.counters.enqueued).sum::<u64>()
    );
    assert_eq!(
        agg.dropped,
        lattices.iter().map(|l| l.counters.dropped).sum::<u64>()
    );
    assert_eq!(
        agg.decoded,
        lattices.iter().map(|l| l.counters.decoded).sum::<u64>()
    );
    assert_eq!(
        agg.backpressure_spins,
        lattices
            .iter()
            .map(|l| l.counters.backpressure_spins)
            .sum::<u64>()
    );
}

/// One machine, two contracts: lattice 0 may shed (tight budget), lattice 1
/// must not lose a round.  Under a machine-wide throttle the Drop lattice
/// sheds while the Block lattice stays lossless, and every counter
/// reconciles.
#[test]
fn drop_lattice_sheds_while_block_neighbour_stays_lossless() {
    let rounds = 150;
    let config = machine_of(vec![
        unpaced_spec(3, 1, rounds)
            .with_push_policy(PushPolicy::Drop)
            .with_queue_budget(2)
            .with_shed_slo(1e-6),
        unpaced_spec(3, 2, rounds).with_shed_slo(0.5),
    ]);
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&slow_factory(30_000));
    let report = &outcome.report;
    let drop = &report.lattices[0];
    let block = &report.lattices[1];

    // The Drop lattice shed; its policy is its own, not the machine's.
    assert!(drop.counters.dropped > 0, "tight budget must shed");
    assert!(drop.shed_rate() > 0.0);
    assert_eq!(drop.push_policy, PushPolicy::Drop);
    assert!(drop.push_policy_overridden);
    assert_eq!(drop.queue_budget, Some(2));
    assert_eq!(drop.verdict(), "SHEDDING");
    // The Block lattice inherited the machine policy and lost nothing.
    assert_eq!(block.counters.dropped, 0);
    assert_eq!(block.counters.decoded, rounds);
    assert_eq!(block.push_policy, PushPolicy::Block);
    assert!(!block.push_policy_overridden);
    assert_eq!(block.shed_rate(), 0.0);

    // SLO verdicts: the Drop lattice violates its (absurdly strict) SLO,
    // the Block lattice trivially meets its own.
    assert_eq!(drop.meets_shed_slo(), Some(false));
    assert_eq!(block.meets_shed_slo(), Some(true));
    assert_eq!(report.lattices_violating_slo(), vec![0]);

    // Everything generated is accounted for, per lattice and in aggregate.
    assert_eq!(
        drop.counters.decoded + drop.counters.dropped,
        drop.counters.generated
    );
    assert_aggregate_equals_sum(&outcome);

    // Shed rounds were fed into the frame path as identity corrections, so
    // each lattice's frame owns up to every generated round.
    assert_eq!(outcome.frame_for(0).total_recorded(), rounds);
    assert_eq!(outcome.frame_for(1).total_recorded(), rounds);
}

/// The regression for shed rounds vanishing from backlog accounting: the
/// per-lattice `dropped` counters must reconcile with `MeasuredBacklog`
/// (rounds owed versus rounds shed), per lattice and machine-wide.
#[test]
fn shed_rounds_reconcile_with_measured_backlog() {
    let mut config = machine_of(vec![
        unpaced_spec(3, 11, 200).with_queue_budget(2),
        unpaced_spec(3, 12, 200),
    ]);
    config.push_policy = PushPolicy::Drop;
    config.queue_capacity = 8; // tiny shared rings: lattice 1 sheds too
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&slow_factory(20_000));
    let report = &outcome.report;
    assert!(report.counters.dropped > 0, "overload must shed");

    for lattice in &report.lattices {
        // Shed rounds are owed nowhere — but they must be *counted*: the
        // measured trajectory carries them next to the backlog.
        assert_eq!(lattice.measured.shed, lattice.counters.dropped);
        assert_eq!(lattice.measured.rounds, lattice.counters.generated);
        // At quiescence every generated round was decoded or shed.
        assert_eq!(
            lattice.counters.decoded + lattice.counters.dropped,
            lattice.counters.generated
        );
        // The unserved measure restores shed rounds to the growth math.
        assert!(lattice.measured.unserved_per_round() >= lattice.measured.growth_per_round());
        assert!(
            (lattice.measured.shed_per_round()
                - lattice.counters.dropped as f64 / lattice.counters.generated as f64)
                .abs()
                < 1e-12
        );
        // Identity corrections cover the shed rounds in the frame path.
        assert_eq!(
            outcome.frame_for(lattice.lattice_id).total_recorded(),
            lattice.counters.generated
        );
    }
    // Machine-wide, the measured shed count is the aggregate drop counter —
    // the rounds that previously vanished from the accounting.
    assert_eq!(report.measured.shed, report.counters.dropped);
    assert_eq!(
        report.measured.shed,
        report.lattices.iter().map(|l| l.measured.shed).sum::<u64>()
    );
    assert_eq!(report.verdict(), "SHEDDING");
}

/// Sequential reference decode of one lattice's seeded stream with a caller-
/// supplied decoder.
fn sequential_decode(
    engine: &StreamingEngine,
    lattice_id: usize,
    decoder: &mut dyn Decoder,
) -> (Vec<PauliString>, PauliFrame) {
    let set = engine.lattice_set();
    let spec = set.spec(lattice_id);
    let lattice = set.lattice(lattice_id).clone();
    let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed).unwrap();
    let mut frame = PauliFrame::new(lattice.num_data());
    let mut corrections = Vec::new();
    for _ in 0..spec.rounds {
        let syndrome = source.next_syndrome();
        let x = decoder.decode(&lattice, &syndrome, Sector::X);
        let z = decoder.decode(&lattice, &syndrome, Sector::Z);
        let mut correction = x.into_pauli_string();
        correction.compose_with(z.pauli_string());
        frame.record(&correction);
        corrections.push(correction);
    }
    (corrections, frame)
}

/// Heterogeneous decoder assignment is transparent: each lattice's streamed
/// corrections are byte-identical to a sequential run of *that lattice's
/// own* decoder, and the report names each lattice's decoder.
#[test]
fn heterogeneous_factories_match_same_decoder_sequential_runs() {
    let mut config = machine_of(vec![
        // d=3 served by the exhaustive lookup table...
        unpaced_spec(3, 21, 120).with_decoder(|| {
            Box::new(LookupDecoder::new(&Lattice::new(3).unwrap()).unwrap()) as DynDecoder
        }),
        // ...beside a d=5 patch on the machine-wide union-find factory.
        unpaced_spec(5, 22, 100),
        // A second d=3 patch on the default factory: same distance, other
        // factory — it must NOT share the lookup decoder.
        unpaced_spec(3, 23, 80),
    ]);
    config.workers = 2;
    config.record_corrections = true;
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder);

    assert_eq!(outcome.report.lattices[0].decoder, "lookup-table");
    assert_eq!(outcome.report.lattices[1].decoder, "union-find");
    assert_eq!(outcome.report.lattices[2].decoder, "union-find");
    assert_eq!(outcome.report.decoder, "lookup-table+union-find");

    let references: [&mut dyn Decoder; 3] = [
        &mut LookupDecoder::new(&Lattice::new(3).unwrap()).unwrap(),
        &mut UnionFindDecoder::new(),
        &mut UnionFindDecoder::new(),
    ];
    for (lattice_id, reference) in references.into_iter().enumerate() {
        let (reference_corrections, reference_frame) =
            sequential_decode(&engine, lattice_id, reference);
        let streamed: Vec<&PauliString> = outcome
            .corrections
            .iter()
            .filter(|c| c.lattice_id as usize == lattice_id)
            .map(|c| &c.correction)
            .collect();
        assert_eq!(streamed.len(), reference_corrections.len());
        for (round, (s, b)) in streamed.iter().zip(&reference_corrections).enumerate() {
            assert_eq!(
                *s, b,
                "lattice {lattice_id} round {round} diverged from its own decoder's \
                 sequential run"
            );
        }
        assert_eq!(
            &outcome.frame_for(lattice_id).merged(),
            reference_frame.as_pauli_string(),
            "lattice {lattice_id} merged frame"
        );
    }
}

/// The residual analysis prices shedding: the Drop lattice's measured
/// failure rate exceeds its lossless Block twin's (same distance, noise and
/// workload), its shed tally covers exactly the dropped rounds, and the
/// decoded/shed split covers every generated round.
#[test]
fn residual_analysis_measures_the_logical_cost_of_shedding() {
    let rounds = 200;
    let mut config = machine_of(vec![
        unpaced_spec(3, 31, rounds)
            .with_push_policy(PushPolicy::Drop)
            .with_queue_budget(1),
        unpaced_spec(3, 31, rounds), // identical stream, lossless contract
    ]);
    config.analyze_residuals = true;
    config.record_corrections = false;
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&slow_factory(25_000));
    // The analysis recorded corrections internally but the caller did not
    // ask for them.
    assert!(outcome.corrections.is_empty());

    let drop = &outcome.report.lattices[0];
    let block = &outcome.report.lattices[1];
    assert!(drop.counters.dropped > 0);
    assert_eq!(block.counters.dropped, 0);

    let drop_residual = drop.residual.expect("analysis requested");
    let block_residual = block.residual.expect("analysis requested");
    // Coverage: decoded + shed classifications == generated rounds.
    assert_eq!(drop_residual.shed.rounds, drop.counters.dropped);
    assert_eq!(drop_residual.decoded.rounds, drop.counters.decoded);
    assert_eq!(drop_residual.total().rounds, drop.counters.generated);
    assert_eq!(block_residual.shed.rounds, 0);
    assert_eq!(block_residual.decoded.rounds, rounds);

    // The two lattices stream the *same* seeded errors, so the only
    // difference is the shedding — and it must cost measurable failures.
    assert!(
        drop_residual.failure_rate() > block_residual.failure_rate(),
        "shedding must cost logical failures: drop {:.4} vs block {:.4}",
        drop_residual.failure_rate(),
        block_residual.failure_rate()
    );
    assert!(drop_residual.shed_penalty().expect("rounds were shed") > 0.0);
    // A lossless lattice has no shed rounds, hence no defined penalty.
    assert_eq!(block_residual.shed_penalty(), None);
    // Shed rounds fail whenever the round's error was nontrivial — at 5%
    // depolarizing on 13 data qubits roughly half the rounds.  Well above
    // zero, and the dominant failure class is an uncleared syndrome.
    assert!(drop_residual.shed.failure_rate() > 0.2);
    assert!(drop_residual.shed.invalid_corrections >= drop_residual.shed.logical_errors);
}

/// A Block lattice with a queue budget never sheds: the producer absorbs
/// the overload as backpressure attributed to that lattice.
#[test]
fn block_lattice_with_budget_backpressures_instead_of_shedding() {
    let rounds = 60;
    let config = machine_of(vec![
        unpaced_spec(3, 41, rounds).with_queue_budget(1),
        unpaced_spec(3, 42, rounds),
    ]);
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&slow_factory(20_000));
    let budgeted = &outcome.report.lattices[0];
    assert_eq!(budgeted.counters.dropped, 0);
    assert_eq!(budgeted.counters.decoded, rounds);
    assert!(
        budgeted.counters.backpressure_spins > 0,
        "budget of 1 outstanding round against a 20 us floor must spin"
    );
    assert_eq!(outcome.frame_for(0).total_recorded(), rounds);
    assert_aggregate_equals_sum(&outcome);
}
