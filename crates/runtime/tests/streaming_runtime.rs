//! Stream-versus-batch equivalence and backlog-growth integration tests.
//!
//! The streaming runtime must be a *transparent* transport: pushing a seeded
//! syndrome stream through the lock-free queue and a pool of workers must
//! yield exactly the corrections a plain offline loop produces on the same
//! stream.  These tests pin that down for one worker (byte-identical
//! per-round corrections, in order) and for many workers (identical merged
//! logical frame), plus the empirical backlog-growth experiment against the
//! closed-form model.

use nisqplus_decoders::{DecoderFactory, DynDecoder, GreedyMatchingDecoder};
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::lattice::Sector;
use nisqplus_qec::pauli::PauliString;
use nisqplus_runtime::{
    NoiseSpec, PushPolicy, RuntimeConfig, StreamingEngine, SyndromeSource, ThrottledDecoder,
};
use proptest::prelude::*;

fn greedy_factory() -> impl DecoderFactory {
    || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
}

fn equivalence_config(distance: usize, rounds: u64, workers: usize, seed: u64) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(distance);
    // Depolarizing noise exercises both stabilizer sectors.
    config.noise = NoiseSpec::Depolarizing { p: 0.04 };
    config.seed = seed;
    config.rounds = rounds;
    config.workers = workers;
    config.cadence_cycles = 0; // un-paced: equivalence is about data, not timing
    config.queue_capacity = 128;
    config.push_policy = PushPolicy::Block;
    config.record_corrections = true;
    config
}

/// Decodes the same seeded stream in a plain offline loop, mirroring the
/// worker's decode-both-sectors-and-compose step exactly.
fn batch_decode(config: &RuntimeConfig) -> (Vec<PauliString>, PauliFrame) {
    let engine = StreamingEngine::new(*config).expect("valid config");
    let mut source = SyndromeSource::new(engine.lattice().clone(), config.noise, config.seed)
        .expect("valid noise");
    let mut decoder = greedy_factory().build();
    let lattice = engine.lattice().clone();
    let mut frame = PauliFrame::new(lattice.num_data());
    let mut corrections = Vec::new();
    for _ in 0..config.rounds {
        let syndrome = source.next_syndrome();
        let x = decoder.decode(&lattice, &syndrome, Sector::X);
        let z = decoder.decode(&lattice, &syndrome, Sector::Z);
        let mut correction = x.into_pauli_string();
        correction.compose_with(z.pauli_string());
        frame.record(&correction);
        corrections.push(correction);
    }
    (corrections, frame)
}

#[test]
fn single_worker_stream_matches_batch_decode_exactly() {
    let config = equivalence_config(3, 400, 1, 11);
    let (batch_corrections, batch_frame) = batch_decode(&config);

    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run(&greedy_factory());

    assert_eq!(outcome.report.counters.decoded, config.rounds);
    assert_eq!(outcome.corrections.len(), batch_corrections.len());
    for (streamed, batch) in outcome.corrections.iter().zip(&batch_corrections) {
        assert_eq!(
            &streamed.correction, batch,
            "round {} diverged between stream and batch",
            streamed.round
        );
    }
    // One worker, one shard: the frame is byte-identical too.
    assert_eq!(outcome.frame().shards().len(), 1);
    assert_eq!(&outcome.frame().merged(), batch_frame.as_pauli_string());
    assert_eq!(
        outcome.frame().total_recorded(),
        batch_frame.recorded_cycles()
    );
}

#[test]
fn multi_worker_stream_preserves_the_logical_frame() {
    let config = equivalence_config(5, 1_200, 4, 23);
    let (batch_corrections, batch_frame) = batch_decode(&config);

    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run(&greedy_factory());

    // Work was actually spread across the pool...
    assert_eq!(outcome.frame().shards().len(), 4);
    assert_eq!(outcome.frame().total_recorded(), config.rounds);
    // ...yet the merged Pauli frame is exactly the sequential one (Pauli
    // composition is commutative modulo the phase the frame discards).
    assert_eq!(&outcome.frame().merged(), batch_frame.as_pauli_string());
    // And per-round corrections are still byte-identical: each round is an
    // independent decode, so which worker ran it cannot matter.
    for (streamed, batch) in outcome.corrections.iter().zip(&batch_corrections) {
        assert_eq!(&streamed.correction, batch);
    }
}

/// Batched-window decoding is transparent: for every window size k the
/// streamed per-round corrections and the merged frame are byte-identical to
/// the sequential reference decode of the same seeded stream.
#[test]
fn stream_matches_batch_for_every_window_size() {
    for k in [1usize, 4, 16] {
        for workers in [1usize, 3] {
            let mut config = equivalence_config(3, 400, workers, 77);
            config.batch_size = k;
            let (batch_corrections, batch_frame) = batch_decode(&config);
            let engine = StreamingEngine::new(config).unwrap();
            let outcome = engine.run(&greedy_factory());
            assert_eq!(outcome.report.batch_size, k);
            assert_eq!(outcome.report.counters.decoded, config.rounds);
            assert!(
                outcome.report.counters.batches <= config.rounds,
                "batches must cover rounds (k={k})"
            );
            assert_eq!(&outcome.frame().merged(), batch_frame.as_pauli_string());
            assert_eq!(outcome.corrections.len(), batch_corrections.len());
            for (streamed, batch) in outcome.corrections.iter().zip(&batch_corrections) {
                assert_eq!(
                    &streamed.correction, batch,
                    "round {} diverged at window k={k}, {workers} worker(s)",
                    streamed.round
                );
            }
        }
    }
}

/// Work stealing under a full multi-worker run never corrupts the output:
/// whatever rebalancing happened, every round is decoded exactly once and
/// the merged frame matches the sequential reference.  (The deterministic
/// steal-from-a-foreign-ring behaviour itself is pinned by a unit test in
/// `engine.rs`.)
#[test]
fn work_stealing_pool_preserves_the_frame() {
    let mut config = equivalence_config(3, 600, 4, 99);
    config.record_corrections = false;
    config.batch_size = 4;
    let (_, batch_frame) = batch_decode(&config);
    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    assert_eq!(outcome.report.counters.decoded, config.rounds);
    assert_eq!(&outcome.frame().merged(), batch_frame.as_pauli_string());
}

#[test]
fn throttled_stream_grows_backlog_as_the_model_predicts() {
    let mut config = equivalence_config(3, 300, 1, 5);
    config.record_corrections = false;
    // ~50 us cadence against a 200 us floor per decode() call — two sector
    // decodes per round make that >= 400 us of service per round, f >= 8 —
    // so the backlog grows decisively even under debug-build and single-core
    // scheduling noise.
    config.cadence_cycles = 307_276;
    config.queue_capacity = 512;
    let floor_ns = 200_000;

    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run(&|| {
        Box::new(ThrottledDecoder::new(
            GreedyMatchingDecoder::new(),
            floor_ns,
        )) as DynDecoder
    });
    let report = &outcome.report;

    assert_eq!(report.counters.decoded, config.rounds);
    assert!(
        report.final_backlog > config.rounds / 4,
        "an f~4 decoder must fall well behind, backlog was {}",
        report.final_backlog
    );
    assert!(!report.queue_stayed_bounded());
    // The backlog grows over the run: later timeline samples sit above the
    // first quarter's.
    let timeline = &report.depth_timeline;
    let early = timeline[timeline.len() / 4].backlog;
    let late = timeline[timeline.len() - 1].backlog;
    assert!(late > early, "backlog should grow: {early} -> {late}");
    // Growth within 3x of the closed-form model at the measured rates (the
    // release-build example asserts the tighter 2x bound).
    assert!(
        report.comparison.within(3.0),
        "measured {:.3} vs predicted {:.3} rounds/round",
        report.comparison.measured_growth_per_round,
        report.comparison.predicted_growth_per_round
    );
}

#[test]
fn fast_decoder_keeps_the_queue_bounded() {
    let mut config = equivalence_config(3, 300, 2, 7);
    config.record_corrections = false;
    // ~100 us cadence: comfortably slower than even a debug-build decode.
    config.cadence_cycles = 614_552;
    let engine = StreamingEngine::new(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    assert_eq!(outcome.report.counters.decoded, config.rounds);
    assert!(
        outcome.report.queue_stayed_bounded(),
        "final backlog {} on {} rounds",
        outcome.report.final_backlog,
        outcome.report.rounds
    );
    assert_eq!(outcome.report.comparison.predicted_growth_per_round, 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Stream-equals-batch holds for arbitrary seeds and worker counts.
    #[test]
    fn stream_matches_batch_for_any_seed(seed in 0u64..1_000, workers in 1usize..4) {
        let config = equivalence_config(3, 120, workers, seed);
        let (batch_corrections, batch_frame) = batch_decode(&config);
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        prop_assert_eq!(&outcome.frame().merged(), batch_frame.as_pauli_string());
        prop_assert_eq!(outcome.corrections.len(), batch_corrections.len());
        for (streamed, batch) in outcome.corrections.iter().zip(&batch_corrections) {
            prop_assert_eq!(&streamed.correction, batch);
        }
    }
}
