//! Fault-injection properties: hostile wire records and crash recovery.
//!
//! Two property families pin down the robustness contract:
//!
//! * **Hostile streams** — any corruption of an encoded record (any single
//!   bit flip, or any set of distinct flips, in any header field, the
//!   payload, the padding or the checksum trailer) must surface as a typed
//!   [`PacketError`] from the validating decode path.  Never a panic, and
//!   never a silent misdecode: the checksum fold is injective per body
//!   word, so a damaged record cannot re-hash to its own trailer.
//! * **Recovery determinism** — for any (seed, crash round, worker count),
//!   killing a worker mid-run and letting the supervisor restart it yields
//!   byte-identical merged Pauli frames and per-round corrections to the
//!   same run without the crash.  Recovery is exact, not best-effort.

use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_runtime::fault::silence_injected_crash_panics;
use nisqplus_runtime::{
    FaultPlan, MachineConfig, NoiseSpec, PacketCodec, PushPolicy, RuntimeConfig, RuntimeOutcome,
    StreamingEngine, SyndromePacket,
};
use proptest::prelude::*;

/// A codec registered for three lattices of different ancilla counts, so
/// corrupted lattice-id fields can land on a registered lattice of the
/// wrong size (`AncillaMismatch`), an unregistered one (`UnknownLattice`),
/// or survive to the checksum check (`Corrupted`).
fn hostile_codec() -> PacketCodec {
    PacketCodec::for_lattice_bits(&[40, 24, 12])
}

/// Encodes one valid record for `lattice_id` with the given hot defects.
fn encode_record(codec: &PacketCodec, lattice_id: u32, round: u64, hot: &[usize]) -> Vec<u64> {
    let bits = codec.syndrome_bits(lattice_id);
    let hot: Vec<usize> = hot.iter().map(|&i| i % bits).collect();
    let syndrome = Syndrome::from_hot(bits, &hot);
    let packet = SyndromePacket::new(lattice_id, round, round.wrapping_mul(997), &syndrome);
    let mut record = vec![0u64; codec.words_per_packet()];
    codec.encode(&packet, &mut record);
    record
}

/// A 120-round single-lattice Block machine carrying `plan`; un-paced so
/// the property is about data integrity, not timing.
fn crash_machine(seed: u64, workers: usize, plan: FaultPlan) -> MachineConfig {
    let mut config = RuntimeConfig::new(3);
    config.noise = NoiseSpec::Depolarizing { p: 0.04 };
    config.seed = seed;
    config.rounds = 120;
    config.workers = workers;
    config.cadence_cycles = 0;
    config.queue_capacity = 128;
    config.push_policy = PushPolicy::Block;
    config.record_corrections = true;
    let mut machine = MachineConfig::from(config);
    machine.fault = plan;
    machine
}

fn run_machine(machine: MachineConfig) -> RuntimeOutcome {
    let engine = StreamingEngine::with_machine(machine).expect("valid config");
    engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single bit flip anywhere in a record — version field, lattice
    /// id, ancilla count, round, timestamp, payload, padding or the
    /// checksum trailer — is rejected with a typed error, and the
    /// rejecting decode leaves the output packet untouched.
    #[test]
    fn any_single_bit_flip_is_rejected(
        lattice_id in 0u32..3,
        round in 0u64..1 << 62,
        hot in proptest::collection::vec(0usize..1000, 0..6),
        word in 0usize..6, // reduced modulo the record length below
        bit in 0u32..64,
    ) {
        let codec = hostile_codec();
        let mut record = encode_record(&codec, lattice_id, round, &hot);
        let word = word % record.len();
        record[word] ^= 1u64 << bit;

        prop_assert!(codec.verify(&record).is_err(), "verify must reject");
        prop_assert!(codec.try_decode(&record).is_err(), "try_decode must reject");

        let clean = codec.try_decode(&encode_record(&codec, lattice_id, round, &hot))
            .expect("the uncorrupted record decodes");
        let mut buffer = clean.clone();
        prop_assert!(codec.try_decode_into(&record, &mut buffer).is_err());
        prop_assert_eq!(&buffer, &clean, "a rejected decode must not touch the buffer");
    }

    /// Any *set* of distinct bit flips is rejected too: multi-bit damage
    /// across header and body cannot cancel out into an accepted record.
    #[test]
    fn any_distinct_flip_set_is_rejected(
        lattice_id in 0u32..3,
        round in 0u64..1 << 62,
        hot in proptest::collection::vec(0usize..1000, 0..6),
        raw_flips in proptest::collection::vec((0usize..6, 0u32..64), 1..8),
    ) {
        let codec = hostile_codec();
        let mut record = encode_record(&codec, lattice_id, round, &hot);
        // Distinct (word, bit) targets only: duplicates would XOR back out.
        let flips: std::collections::BTreeSet<(usize, u32)> = raw_flips
            .into_iter()
            .map(|(word, bit)| (word % record.len(), bit))
            .collect();
        for &(word, bit) in &flips {
            record[word] ^= 1u64 << bit;
        }
        prop_assert!(codec.verify(&record).is_err());
        prop_assert!(codec.try_decode(&record).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash recovery is exact for any (seed, crash round, worker count):
    /// the run with a mid-stream worker kill loses no rounds and commits
    /// byte-identical frames and corrections to the crash-free run.
    #[test]
    fn recovery_is_deterministic_for_any_seed_and_crash_round(
        seed in 0u64..1_000,
        crash_after in 0u64..30,
        workers in 1usize..4,
    ) {
        silence_injected_crash_panics();
        let plan = FaultPlan::default().crash_worker(0, crash_after);
        let crashed = run_machine(crash_machine(seed, workers, plan));
        let baseline = run_machine(crash_machine(seed, workers, FaultPlan::default()));

        let fault = &crashed.report.fault;
        prop_assert_eq!(fault.injected_crashes, 1, "worker 0 always decodes enough to die");
        prop_assert_eq!(fault.observed_crashes, 1);
        prop_assert_eq!(fault.worker_restarts, 1);
        prop_assert!(fault.reconciled(), "fault books must reconcile: {}", fault);

        prop_assert_eq!(crashed.report.counters.decoded, 120);
        prop_assert_eq!(crashed.report.counters.dropped, 0);
        prop_assert_eq!(crashed.report.counters.quarantined, 0);
        prop_assert_eq!(&crashed.frame().merged(), &baseline.frame().merged(),
            "merged frames must be byte-identical across the crash");
        prop_assert_eq!(crashed.corrections.len(), baseline.corrections.len());
        for (with_crash, without) in crashed.corrections.iter().zip(&baseline.corrections) {
            prop_assert_eq!(with_crash, without,
                "per-round corrections must be byte-identical across the crash");
        }
    }
}
