//! Multi-lattice sharding integration tests: stream-versus-batch equivalence
//! on the sharded path, per-lattice telemetry correctness, and
//! aggregate-equals-sum counter invariants.
//!
//! The engine must be a transparent transport *per lattice*: interleaving N
//! seeded streams through one ring fabric and one worker pool must yield,
//! for every lattice, exactly the corrections and merged frame a plain
//! offline loop produces on that lattice's own stream.  And the per-lattice
//! telemetry must answer "which patch is falling behind" truthfully: a
//! deliberately slowed patch reports GROWING while its neighbours stay
//! BOUNDED, and every aggregate flow counter equals the sum of its
//! per-lattice slices.

use nisqplus_decoders::{DecoderFactory, DynDecoder, GreedyMatchingDecoder};
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::lattice::Sector;
use nisqplus_qec::pauli::PauliString;
use nisqplus_runtime::{
    MachineConfig, NoiseSpec, PushPolicy, RuntimeOutcome, StreamingEngine, SyndromeSource,
    ThrottledDecoder,
};
use proptest::prelude::*;

fn greedy_factory() -> impl DecoderFactory {
    || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
}

/// An unpaced machine of the given distances, seeded per lattice, with
/// depolarizing noise exercising both stabilizer sectors.
fn machine(distances: &[usize], rounds: u64, workers: usize, base_seed: u64) -> MachineConfig {
    let mut config = MachineConfig::new(distances, base_seed);
    for spec in &mut config.lattices {
        spec.noise = NoiseSpec::Depolarizing { p: 0.04 };
        spec.rounds = rounds;
        spec.cadence_cycles = 0; // un-paced: equivalence is about data, not timing
    }
    config.workers = workers;
    config.queue_capacity = 256;
    config.push_policy = PushPolicy::Block;
    config.record_corrections = true;
    config
}

/// Decodes one lattice's seeded stream in a plain offline loop, mirroring
/// the worker's decode-both-sectors-and-compose step exactly.
fn sequential_decode(
    engine: &StreamingEngine,
    lattice_id: usize,
) -> (Vec<PauliString>, PauliFrame) {
    let set = engine.lattice_set();
    let spec = set.spec(lattice_id);
    let lattice = set.lattice(lattice_id).clone();
    let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed).unwrap();
    let mut decoder = greedy_factory().build();
    let mut frame = PauliFrame::new(lattice.num_data());
    let mut corrections = Vec::new();
    for _ in 0..spec.rounds {
        let syndrome = source.next_syndrome();
        let x = decoder.decode(&lattice, &syndrome, Sector::X);
        let z = decoder.decode(&lattice, &syndrome, Sector::Z);
        let mut correction = x.into_pauli_string();
        correction.compose_with(z.pauli_string());
        frame.record(&correction);
        corrections.push(correction);
    }
    (corrections, frame)
}

/// Asserts that every lattice's streamed corrections and merged frame are
/// byte-identical to its sequential reference decode.
fn assert_sharded_equivalence(engine: &StreamingEngine, outcome: &RuntimeOutcome) {
    let set = engine.lattice_set();
    for lattice_id in 0..set.len() {
        let (batch_corrections, batch_frame) = sequential_decode(engine, lattice_id);
        let streamed: Vec<&PauliString> = outcome
            .corrections
            .iter()
            .filter(|c| c.lattice_id as usize == lattice_id)
            .map(|c| &c.correction)
            .collect();
        assert_eq!(
            streamed.len(),
            batch_corrections.len(),
            "lattice {lattice_id} round count"
        );
        for (round, (s, b)) in streamed.iter().zip(&batch_corrections).enumerate() {
            assert_eq!(
                *s, b,
                "lattice {lattice_id} round {round} diverged between sharded stream and batch"
            );
        }
        assert_eq!(
            &outcome.frame_for(lattice_id).merged(),
            batch_frame.as_pauli_string(),
            "lattice {lattice_id} merged frame"
        );
        assert_eq!(
            outcome.frame_for(lattice_id).total_recorded(),
            set.spec(lattice_id).rounds
        );
    }
}

#[test]
fn sharded_stream_matches_per_lattice_batch_decode() {
    // Mixed distances, multiple lattices per distance, a pool smaller than
    // the lattice count: every sharing/interleaving axis is exercised.
    let config = machine(&[3, 5, 3, 7], 200, 2, 41);
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&greedy_factory());
    assert_eq!(outcome.report.num_lattices, 4);
    assert_eq!(outcome.report.distances, vec![3, 5, 7]);
    assert_eq!(outcome.report.counters.decoded, 800);
    assert_eq!(outcome.frames.len(), 4);
    assert_sharded_equivalence(&engine, &outcome);
}

#[test]
fn sharded_equivalence_holds_for_every_window_size() {
    for k in [1usize, 4, 16] {
        let mut config = machine(&[3, 5], 150, 2, 13);
        config.batch_size = k;
        let engine = StreamingEngine::with_machine(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        assert_eq!(outcome.report.counters.decoded, 300, "k={k}");
        assert_sharded_equivalence(&engine, &outcome);
    }
}

/// Aggregate flow counters are exactly the sum of the per-lattice slices —
/// including under load shedding, where drops are attributed per lattice.
#[test]
fn aggregate_counters_equal_the_sum_of_per_lattice_counters() {
    let mut config = machine(&[3, 5, 3], 300, 1, 29);
    config.record_corrections = false;
    config.queue_capacity = 4; // tiny ring: force drops
    config.push_policy = PushPolicy::Drop;
    let factory =
        || Box::new(ThrottledDecoder::new(GreedyMatchingDecoder::new(), 30_000)) as DynDecoder;
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&factory);
    let agg = outcome.report.counters;
    assert!(agg.dropped > 0, "tiny ring should overflow");
    let lattices = &outcome.report.lattices;
    assert_eq!(
        agg.generated,
        lattices.iter().map(|l| l.counters.generated).sum::<u64>()
    );
    assert_eq!(
        agg.enqueued,
        lattices.iter().map(|l| l.counters.enqueued).sum::<u64>()
    );
    assert_eq!(
        agg.dropped,
        lattices.iter().map(|l| l.counters.dropped).sum::<u64>()
    );
    assert_eq!(
        agg.decoded,
        lattices.iter().map(|l| l.counters.decoded).sum::<u64>()
    );
    // Per-lattice latency sample counts add up to the aggregate too.
    assert_eq!(
        outcome.report.decode_latency.summary.count,
        lattices
            .iter()
            .map(|l| l.decode_latency.summary.count)
            .sum::<usize>()
    );
}

/// The per-lattice telemetry correctness experiment: lattice 0 (d=5) is
/// served by a decoder throttled *only at d=5*, so its backlog must GROW,
/// while lattice 1 (d=3) decodes at full speed and must stay BOUNDED.
///
/// Lattice 0 streams a shorter window than lattice 1: its backlog is
/// measured while the overload is live, and the pool has drained the d=5
/// wreckage long before lattice 1's generation (and measurement) ends —
/// per-lattice boundedness is about *that lattice's* ability to keep up.
#[test]
fn throttled_lattice_grows_while_neighbour_stays_bounded() {
    let mut config = machine(&[5, 3], 0, 2, 17);
    // ~100 us cadence on both lattices (307_276 cycles * 162.72 ps * 2 ≈ 100 us).
    config.lattices[0].rounds = 150;
    config.lattices[0].cadence_cycles = 614_552;
    config.lattices[1].rounds = 900;
    config.lattices[1].cadence_cycles = 614_552;
    config.record_corrections = false;
    config.queue_capacity = 2048;
    // 200 us floor per d=5 sector decode: two sectors per round make the
    // d=5 service >= 400 us against a 100 us cadence, f >= 4 even with both
    // workers on it; d=3 rounds decode in microseconds.
    let floor_ns = 200_000;
    let factory = move || {
        Box::new(ThrottledDecoder::for_distance(
            GreedyMatchingDecoder::new(),
            floor_ns,
            5,
        )) as DynDecoder
    };
    let engine = StreamingEngine::with_machine(config).unwrap();
    let outcome = engine.run(&factory);
    let report = &outcome.report;
    assert_eq!(report.counters.decoded, 1050);

    let slow = &report.lattices[0];
    let fast = &report.lattices[1];
    assert!(
        slow.final_backlog > slow.rounds / 4,
        "throttled d=5 lattice must fall well behind, backlog was {} of {} rounds",
        slow.final_backlog,
        slow.rounds
    );
    assert!(
        !slow.queue_stayed_bounded(),
        "lattice 0 must report GROWING"
    );
    assert!(
        fast.queue_stayed_bounded(),
        "unthrottled d=3 lattice must report BOUNDED, backlog was {} of {} rounds",
        fast.final_backlog,
        fast.rounds
    );
    assert_eq!(report.lattices_falling_behind(), vec![0]);
    // The slow lattice's own service time reflects the throttle floor; the
    // fast lattice's does not.
    assert!(slow.decode_latency.summary.mean > 2.0 * floor_ns as f64 * 0.9);
    assert!(fast.decode_latency.summary.mean < floor_ns as f64);
    // Aggregate flow counters still reconcile with the slices.
    assert_eq!(
        report.counters.decoded,
        report
            .lattices
            .iter()
            .map(|l| l.counters.decoded)
            .sum::<u64>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sharded stream-equals-batch holds for arbitrary seeds and worker
    /// counts.
    #[test]
    fn sharded_stream_matches_batch_for_any_seed(seed in 0u64..1_000, workers in 1usize..4) {
        let config = machine(&[3, 5, 3], 80, workers, seed);
        let engine = StreamingEngine::with_machine(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        for lattice_id in 0..3 {
            let (batch_corrections, batch_frame) = sequential_decode(&engine, lattice_id);
            prop_assert_eq!(
                &outcome.frame_for(lattice_id).merged(),
                batch_frame.as_pauli_string()
            );
            let streamed: Vec<&PauliString> = outcome
                .corrections
                .iter()
                .filter(|c| c.lattice_id as usize == lattice_id)
                .map(|c| &c.correction)
                .collect();
            prop_assert_eq!(streamed.len(), batch_corrections.len());
            for (s, b) in streamed.iter().zip(&batch_corrections) {
                prop_assert_eq!(*s, b);
            }
        }
    }
}
