//! Matching-based decoders: the greedy 2-approximation and exact
//! minimum-weight matching.
//!
//! Decoding the surface code can be phrased as a matching problem over the
//! detection events (Section V-A of the paper): build a complete graph on the
//! hot ancillas (plus boundary nodes), weight each edge by the length of the
//! shortest error chain that would connect the pair, and find the pairing of
//! minimum total weight.
//!
//! * [`GreedyMatchingDecoder`] sorts all candidate edges by length and adds
//!   them greedily — the same 2-approximation (Drake & Hougardy) that the
//!   paper's hardware algorithm realizes in the mesh.  Its
//!   [`Decoder::decode_into`] hot path runs entirely out of a reusable
//!   scratch arena (flat defect-slot map, in-place edge sort, callback path
//!   walking): zero heap allocation in steady state.
//! * [`ExactMatchingDecoder`] finds the true minimum-weight matching by
//!   dynamic programming over defect subsets, which is feasible for the
//!   defect counts arising at the code distances studied (d ≤ 11).  It plays
//!   the role of the software MWPM baseline [Fowler et al.].

use crate::traits::{
    sector_correction_pauli, sorted_defect_edges, Correction, Decoder, MatchPair, Matching,
};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Slot sentinel marking a boundary pseudo-endpoint in the edge list.
const BOUNDARY: usize = usize::MAX;

/// The reusable per-call arena of the greedy decoder: defect list, candidate
/// edges, flat ancilla→slot map and per-slot matched flags.  Capacities are
/// reserved for the worst case (every same-sector ancilla hot) by
/// [`Decoder::prepare`], after which decode rounds never allocate.
#[derive(Debug, Clone, Default)]
struct GreedyScratch {
    defects: Vec<usize>,
    /// Candidate edges `(chain length, a, b)`; `b == BOUNDARY` marks a
    /// defect-boundary edge.
    edges: Vec<(usize, usize, usize)>,
    /// Flat map ancilla index -> slot in `defects` (entries are only valid
    /// for ancillas currently in `defects`, so no clearing is needed).
    slot_of: Vec<u32>,
    matched: Vec<bool>,
}

impl GreedyScratch {
    fn reserve_for(&mut self, lattice: &Lattice) {
        let per_sector = lattice.ancillas_per_sector();
        self.defects.reserve(per_sector);
        self.matched.reserve(per_sector);
        self.edges.reserve(per_sector * (per_sector + 1) / 2);
        self.slot_of.clear();
        self.slot_of.resize(lattice.num_ancillas(), 0);
    }
}

/// The greedy sorted-edge matching decoder (software reference model of the
/// paper's hardware algorithm).
///
/// The algorithm of Section V-B: compute all pairwise defect distances plus
/// each defect's distance to its nearest boundary, sort ascending, and accept
/// each edge whose endpoints are still unmatched.  Every defect ends up
/// matched because its boundary edge is always individually acceptable.
#[derive(Debug, Clone, Default)]
pub struct GreedyMatchingDecoder {
    scratch: GreedyScratch,
}

impl GreedyMatchingDecoder {
    /// Creates a greedy matching decoder.
    #[must_use]
    pub fn new() -> Self {
        GreedyMatchingDecoder::default()
    }

    /// Computes the greedy matching for an explicit defect list.
    #[must_use]
    pub fn match_defects(&self, lattice: &Lattice, defects: &[usize]) -> Matching {
        let mut matched = vec![false; defects.len()];
        let index_of: HashMap<usize, usize> =
            defects.iter().enumerate().map(|(i, &a)| (a, i)).collect();

        // Candidate edges: defect-defect and defect-boundary, sorted by length.
        // Boundary edges are encoded with `usize::MAX` as the second endpoint.
        let mut edges: Vec<(usize, usize, usize)> = sorted_defect_edges(lattice, defects);
        for &a in defects {
            edges.push((lattice.boundary_distance(a), a, BOUNDARY));
        }
        edges.sort_unstable();

        let mut matching = Matching::new();
        for (_, a, b) in edges {
            let ia = index_of[&a];
            if matched[ia] {
                continue;
            }
            if b == BOUNDARY {
                matched[ia] = true;
                matching.push(MatchPair::ToBoundary(a));
            } else {
                let ib = index_of[&b];
                if matched[ib] {
                    continue;
                }
                matched[ia] = true;
                matched[ib] = true;
                matching.push(MatchPair::Defects(a, b));
            }
        }
        matching
    }
}

impl Decoder for GreedyMatchingDecoder {
    fn name(&self) -> &str {
        "greedy-matching"
    }

    fn prepare(&mut self, lattice: &Lattice) {
        self.scratch.reserve_for(lattice);
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let defects = lattice.defects(syndrome, sector);
        self.match_defects(lattice, &defects)
            .to_correction(lattice, sector)
    }

    /// The amortized greedy decode: identical matching decisions to
    /// [`GreedyMatchingDecoder::match_defects`] (pinned by the seed-reference
    /// property test), but run out of the scratch arena with the correction
    /// chains applied directly to `out` — no per-call allocation.
    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut PauliString,
    ) {
        out.reset_identity(lattice.num_data());
        if self.scratch.slot_of.len() != lattice.num_ancillas() {
            self.scratch.reserve_for(lattice);
        }
        let scratch = &mut self.scratch;
        scratch.defects.clear();
        lattice.for_each_defect(syndrome, sector, |a| scratch.defects.push(a));
        if scratch.defects.is_empty() {
            return;
        }

        scratch.matched.clear();
        scratch.matched.resize(scratch.defects.len(), false);
        scratch.edges.clear();
        for (i, &a) in scratch.defects.iter().enumerate() {
            scratch.slot_of[a] = i as u32;
            for &b in &scratch.defects[i + 1..] {
                scratch.edges.push((lattice.ancilla_distance(a, b), a, b));
            }
            scratch
                .edges
                .push((lattice.boundary_distance(a), a, BOUNDARY));
        }
        // One in-place sort over the combined candidate list is equivalent to
        // the seed's sort-then-append-then-sort: `sort_unstable` on tuples is
        // a total order, so the doubly-sorted seed sequence and this
        // once-sorted sequence are the same sequence.
        scratch.edges.sort_unstable();

        let pauli = sector_correction_pauli(sector);
        for k in 0..scratch.edges.len() {
            let (_, a, b) = scratch.edges[k];
            let ia = scratch.slot_of[a] as usize;
            if scratch.matched[ia] {
                continue;
            }
            if b == BOUNDARY {
                scratch.matched[ia] = true;
                lattice.for_each_boundary_path_qubit(a, |q| out.apply(q, pauli));
            } else {
                let ib = scratch.slot_of[b] as usize;
                if scratch.matched[ib] {
                    continue;
                }
                scratch.matched[ia] = true;
                scratch.matched[ib] = true;
                lattice.for_each_correction_path_qubit(a, b, |q| out.apply(q, pauli));
            }
        }
    }
}

/// Exact minimum-weight matching decoder (the MWPM baseline).
///
/// The decoder minimises the total chain length over all ways of pairing
/// defects with each other or with the boundary, by dynamic programming over
/// subsets of defects.  The subset DP is exponential in the defect count, so
/// syndromes with more than [`ExactMatchingDecoder::max_exact_defects`]
/// defects fall back to the greedy matching (this only happens far above
/// threshold, where every decoder has already failed).  Defect sets beyond
/// [`ExactMatchingDecoder::MAX_REPRESENTABLE_DEFECTS`] cannot be represented
/// in the DP's `u64` subset mask at all; they always fall back and are
/// counted by [`ExactMatchingDecoder::mask_overflow_fallbacks`].
#[derive(Debug)]
pub struct ExactMatchingDecoder {
    max_exact_defects: usize,
    greedy: GreedyMatchingDecoder,
    /// Syndromes whose defect count exceeded the 64-bit subset mask.
    mask_overflow_fallbacks: AtomicU64,
}

impl Clone for ExactMatchingDecoder {
    fn clone(&self) -> Self {
        ExactMatchingDecoder {
            max_exact_defects: self.max_exact_defects,
            greedy: self.greedy.clone(),
            mask_overflow_fallbacks: AtomicU64::new(
                self.mask_overflow_fallbacks.load(Ordering::Relaxed),
            ),
        }
    }
}

impl Default for ExactMatchingDecoder {
    fn default() -> Self {
        ExactMatchingDecoder::new()
    }
}

/// The subset mask of the first `n` defects (all of them in the set).
///
/// `n` may be anywhere in `0..=64`; the seed implementation's `u32` mask
/// silently shifted out of range beyond 32 defects.
fn full_mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl ExactMatchingDecoder {
    /// Default cap on the defect count handled exactly.
    pub const DEFAULT_MAX_EXACT_DEFECTS: usize = 22;

    /// The largest defect count the `u64` subset-DP mask can represent.
    /// Beyond this the decoder always falls back to greedy matching and
    /// increments [`ExactMatchingDecoder::mask_overflow_fallbacks`].
    pub const MAX_REPRESENTABLE_DEFECTS: usize = 64;

    /// Creates an exact matching decoder with the default defect cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_exact_defects(Self::DEFAULT_MAX_EXACT_DEFECTS)
    }

    /// Creates an exact matching decoder with a custom defect cap.
    ///
    /// The subset DP costs `O(2^n · n)` time and memory in the defect count
    /// `n`, so the cap is an explicit opt-in to exponential work: values much
    /// above the mid-20s make a single unlucky syndrome effectively
    /// un-decodable, and the cap — not this decoder — is what protects you.
    /// Caps above [`Self::MAX_REPRESENTABLE_DEFECTS`] additionally exceed
    /// what the `u64` subset mask can represent at all; defect sets beyond
    /// that bound always fall back to greedy matching (with a warning
    /// counter) regardless of the configured cap.
    #[must_use]
    pub fn with_max_exact_defects(max_exact_defects: usize) -> Self {
        ExactMatchingDecoder {
            max_exact_defects,
            greedy: GreedyMatchingDecoder::new(),
            mask_overflow_fallbacks: AtomicU64::new(0),
        }
    }

    /// The largest defect count decoded exactly before falling back to greedy.
    #[must_use]
    pub fn max_exact_defects(&self) -> usize {
        self.max_exact_defects
    }

    /// How many syndromes fell back to greedy matching because their defect
    /// count did not fit the 64-bit subset mask (a warning sign the decoder
    /// is being run far above threshold).
    #[must_use]
    pub fn mask_overflow_fallbacks(&self) -> u64 {
        self.mask_overflow_fallbacks.load(Ordering::Relaxed)
    }

    /// Computes a minimum-weight matching of the given defects.
    ///
    /// Falls back to the greedy matching if there are more defects than the
    /// configured cap (or than the subset mask can represent).
    #[must_use]
    pub fn match_defects(&self, lattice: &Lattice, defects: &[usize]) -> Matching {
        let n = defects.len();
        if n == 0 {
            return Matching::new();
        }
        if n > Self::MAX_REPRESENTABLE_DEFECTS {
            self.mask_overflow_fallbacks.fetch_add(1, Ordering::Relaxed);
            return self.greedy.match_defects(lattice, defects);
        }
        if n > self.max_exact_defects {
            return self.greedy.match_defects(lattice, defects);
        }

        // Pre-compute distances.
        let mut pair_dist = vec![vec![0usize; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = lattice.ancilla_distance(defects[i], defects[j]);
                pair_dist[i][j] = d;
                pair_dist[j][i] = d;
            }
        }
        let boundary_dist: Vec<usize> = defects
            .iter()
            .map(|&a| lattice.boundary_distance(a))
            .collect();

        // DP over subsets: best[mask] = minimal weight to match every defect in `mask`.
        let full = full_mask(n);
        // Memo for the subset DP: mask -> (cost, step taken), where a step is
        // (first defect, Some(partner) | None-for-boundary).
        type MatchStep = (usize, Option<usize>);
        type MatchMemo = HashMap<u64, (usize, Option<MatchStep>)>;
        let mut memo: MatchMemo = HashMap::new();
        memo.insert(0, (0, None));

        fn solve(
            mask: u64,
            n: usize,
            pair_dist: &[Vec<usize>],
            boundary_dist: &[usize],
            memo: &mut MatchMemo,
        ) -> usize {
            if let Some(&(cost, _)) = memo.get(&mask) {
                return cost;
            }
            let first = mask.trailing_zeros() as usize;
            // Option 1: match `first` to the boundary.
            let rest = mask & !(1u64 << first);
            let mut best =
                boundary_dist[first].saturating_add(solve(rest, n, pair_dist, boundary_dist, memo));
            let mut choice = (first, None);
            // Option 2: match `first` with another defect still in the mask.
            for j in (first + 1)..n {
                if rest & (1u64 << j) != 0 {
                    let sub = rest & !(1u64 << j);
                    let cost = pair_dist[first][j].saturating_add(solve(
                        sub,
                        n,
                        pair_dist,
                        boundary_dist,
                        memo,
                    ));
                    if cost < best {
                        best = cost;
                        choice = (first, Some(j));
                    }
                }
            }
            memo.insert(mask, (best, Some(choice)));
            best
        }

        solve(full, n, &pair_dist, &boundary_dist, &mut memo);

        // Reconstruct the optimal pairing.
        let mut matching = Matching::new();
        let mut mask = full;
        while mask != 0 {
            let (_, choice) = memo[&mask];
            let (first, partner) = choice.expect("non-empty mask always has a recorded choice");
            match partner {
                Some(j) => {
                    matching.push(MatchPair::Defects(defects[first], defects[j]));
                    mask &= !(1u64 << first);
                    mask &= !(1u64 << j);
                }
                None => {
                    matching.push(MatchPair::ToBoundary(defects[first]));
                    mask &= !(1u64 << first);
                }
            }
        }
        matching
    }
}

impl Decoder for ExactMatchingDecoder {
    fn name(&self) -> &str {
        "mwpm"
    }

    fn prepare(&mut self, lattice: &Lattice) {
        self.greedy.prepare(lattice);
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let defects = lattice.defects(syndrome, sector);
        self.match_defects(lattice, &defects)
            .to_correction(lattice, sector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::lattice::Coord;
    use nisqplus_qec::logical::{classify_residual, LogicalState};
    use nisqplus_qec::pauli::{Pauli, PauliString};

    fn decode_and_classify<D: Decoder>(
        decoder: &mut D,
        lattice: &Lattice,
        error: &PauliString,
    ) -> LogicalState {
        let syndrome = lattice.syndrome_of(error);
        let correction = decoder.decode(lattice, &syndrome, Sector::X);
        classify_residual(lattice, error, correction.pauli_string(), Sector::X)
    }

    #[test]
    fn empty_syndrome_produces_identity_correction() {
        let lat = Lattice::new(5).unwrap();
        let syndrome = Syndrome::new(lat.num_ancillas());
        for decoder in [
            &mut ExactMatchingDecoder::new() as &mut dyn Decoder,
            &mut GreedyMatchingDecoder::new() as &mut dyn Decoder,
        ] {
            let c = decoder.decode(&lat, &syndrome, Sector::X);
            assert_eq!(c.weight(), 0);
            let mut buf = PauliString::identity(lat.num_data());
            decoder.decode_into(&lat, &syndrome, Sector::X, &mut buf);
            assert!(buf.is_identity());
        }
    }

    #[test]
    fn single_error_corrected_by_both_decoders() {
        let lat = Lattice::new(5).unwrap();
        for q in 0..lat.num_data() {
            let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
            assert_eq!(
                decode_and_classify(&mut ExactMatchingDecoder::new(), &lat, &error),
                LogicalState::Success,
                "exact failed on single error at data qubit {q}"
            );
            assert_eq!(
                decode_and_classify(&mut GreedyMatchingDecoder::new(), &lat, &error),
                LogicalState::Success,
                "greedy failed on single error at data qubit {q}"
            );
        }
    }

    #[test]
    fn greedy_decode_into_matches_decode() {
        let lat = Lattice::new(7).unwrap();
        let mut decoder = GreedyMatchingDecoder::new();
        decoder.prepare(&lat);
        let mut buf = PauliString::identity(lat.num_data());
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        for chunk in xs.chunks(5) {
            let syndrome = Syndrome::from_hot(lat.num_ancillas(), chunk);
            let via_decode = decoder.decode(&lat, &syndrome, Sector::X);
            decoder.decode_into(&lat, &syndrome, Sector::X, &mut buf);
            assert_eq!(&buf, via_decode.pauli_string(), "defects {chunk:?}");
        }
    }

    #[test]
    fn two_adjacent_errors_corrected_at_distance_five() {
        let lat = Lattice::new(5).unwrap();
        // A short chain in the bulk.
        let q1 = lat.cell(Coord::new(4, 4)).index;
        let q2 = lat.cell(Coord::new(6, 4)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q1, q2], Pauli::Z);
        assert_eq!(
            decode_and_classify(&mut ExactMatchingDecoder::new(), &lat, &error),
            LogicalState::Success
        );
    }

    #[test]
    fn any_error_of_weight_at_most_half_distance_is_corrected_exactly() {
        // The exact decoder must correct every error of weight <= (d-1)/2.
        let lat = Lattice::new(5).unwrap();
        let mut decoder = ExactMatchingDecoder::new();
        // All single and a sample of double errors.
        for a in 0..lat.num_data() {
            for b in (a + 1)..lat.num_data() {
                if (a + b) % 7 != 0 {
                    continue; // sample to keep the test fast
                }
                let error = PauliString::from_sparse(lat.num_data(), &[a, b], Pauli::Z);
                assert_eq!(
                    decode_and_classify(&mut decoder, &lat, &error),
                    LogicalState::Success,
                    "exact decoder failed on weight-2 error ({a}, {b}) at d=5"
                );
            }
        }
    }

    #[test]
    fn exact_matching_weight_never_exceeds_greedy() {
        let lat = Lattice::new(7).unwrap();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let exact = ExactMatchingDecoder::new();
        let greedy = GreedyMatchingDecoder::new();
        // Several defect configurations.
        let configs: Vec<Vec<usize>> = vec![
            vec![xs[0], xs[5], xs[11], xs[17]],
            vec![xs[1], xs[2], xs[3], xs[4], xs[20], xs[21]],
            vec![xs[0], xs[41]],
            vec![xs[7]],
            vec![xs[3], xs[9], xs[27], xs[33], xs[39], xs[40]],
        ];
        for defects in configs {
            let we = exact.match_defects(&lat, &defects).total_weight(&lat);
            let wg = greedy.match_defects(&lat, &defects).total_weight(&lat);
            assert!(we <= wg, "exact {we} > greedy {wg} for defects {defects:?}");
            assert!(
                wg <= 2 * we.max(1),
                "greedy exceeded its 2-approximation bound"
            );
        }
    }

    #[test]
    fn matchings_cover_all_defects() {
        let lat = Lattice::new(7).unwrap();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let defects = vec![xs[0], xs[5], xs[11], xs[17], xs[23]];
        for matching in [
            ExactMatchingDecoder::new().match_defects(&lat, &defects),
            GreedyMatchingDecoder::new().match_defects(&lat, &defects),
        ] {
            assert!(matching.covers_exactly(&defects));
        }
    }

    #[test]
    fn fallback_to_greedy_above_defect_cap() {
        let lat = Lattice::new(9).unwrap();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let decoder = ExactMatchingDecoder::with_max_exact_defects(4);
        assert_eq!(decoder.max_exact_defects(), 4);
        let defects: Vec<usize> = xs.iter().copied().take(10).collect();
        let matching = decoder.match_defects(&lat, &defects);
        assert!(matching.covers_exactly(&defects));
        // An above-cap (but representable) fallback is by design, not a
        // mask-overflow warning.
        assert_eq!(decoder.mask_overflow_fallbacks(), 0);
    }

    /// Regression test for the `u32` subset-mask overflow: the seed
    /// implementation computed `1u32 << n` for the full mask, which shifts
    /// out of range for more than 32 defects when the cap is raised.  The
    /// widened `u64` mask handles every representable count, and counts
    /// beyond 64 fall back gracefully instead of overflowing the shift.
    #[test]
    fn more_defects_than_the_mask_width_falls_back_gracefully() {
        let lat = Lattice::new(9).unwrap();
        // d=9 has 72 X-sector ancillas: more defects than the 64-bit mask holds.
        let all: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        assert!(all.len() > ExactMatchingDecoder::MAX_REPRESENTABLE_DEFECTS);
        // A cap far above the mask width must not panic (`1u32 << 72` did).
        let decoder = ExactMatchingDecoder::with_max_exact_defects(100);
        let matching = decoder.match_defects(&lat, &all);
        assert!(matching.covers_exactly(&all));
        assert_eq!(decoder.mask_overflow_fallbacks(), 1);
        // Repeated overflows keep counting; clones carry the count forward.
        let _ = decoder.match_defects(&lat, &all);
        assert_eq!(decoder.mask_overflow_fallbacks(), 2);
        assert_eq!(decoder.clone().mask_overflow_fallbacks(), 2);
    }

    #[test]
    fn full_mask_is_correct_across_the_widened_range() {
        assert_eq!(full_mask(0), 0);
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(32), u32::MAX as u64);
        // The seed's `u32` arithmetic broke exactly here.
        assert_eq!(full_mask(33), (1u64 << 33) - 1);
        assert_eq!(full_mask(63), u64::MAX >> 1);
        assert_eq!(full_mask(64), u64::MAX);
    }

    #[test]
    fn boundary_pairing_is_chosen_when_cheaper() {
        let lat = Lattice::new(9).unwrap();
        // Two defects on opposite edges of the lattice: matching each to its
        // own boundary is cheaper than matching them together.
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let top = *xs.iter().find(|&&a| lat.ancilla_coord(a).row == 1).unwrap();
        let bottom = *xs
            .iter()
            .find(|&&a| lat.ancilla_coord(a).row == lat.size() - 2)
            .unwrap();
        let matching = ExactMatchingDecoder::new().match_defects(&lat, &[top, bottom]);
        assert_eq!(matching.len(), 2);
        for pair in matching.pairs() {
            assert!(matches!(pair, MatchPair::ToBoundary(_)));
        }
    }

    #[test]
    fn decoder_names() {
        assert_eq!(ExactMatchingDecoder::new().name(), "mwpm");
        assert_eq!(GreedyMatchingDecoder::new().name(), "greedy-matching");
    }

    #[test]
    fn decode_both_sectors_handles_y_errors() {
        let lat = Lattice::new(5).unwrap();
        let q = lat.cell(Coord::new(4, 4)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Y);
        let syndrome = lat.syndrome_of(&error);
        let mut decoder = ExactMatchingDecoder::new();
        let correction = decoder.decode_both(&lat, &syndrome);
        let (x_state, z_state) =
            nisqplus_qec::logical::classify_both_sectors(&lat, &error, correction.pauli_string());
        assert_eq!(x_state, LogicalState::Success);
        assert_eq!(z_state, LogicalState::Success);
    }
}
