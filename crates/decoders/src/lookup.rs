//! Exhaustive lookup-table decoding for small lattices.
//!
//! Several of the neural-network decoders surveyed in Section IV of the paper
//! combine a learned model with a lookup table for small code distances.  For
//! `d = 3` (and in principle any lattice whose sector has at most
//! [`LookupDecoder::MAX_TABLE_BITS`] ancillas) the table can simply be built
//! exhaustively: for every possible syndrome, store a minimum-weight error
//! pattern producing it.  This provides an *exact* maximum-likelihood
//! reference (under i.i.d. noise) against which the approximate decoders can
//! be calibrated in unit tests and ablation benches.
//!
//! Table hits hand out borrowed slices — the seed implementation cloned the
//! stored correction `Vec` on every decode — and the bit-order ancilla lists
//! are precomputed per sector, so [`Decoder::decode_into`] is allocation-free.

use crate::traits::{sector_correction_pauli, Correction, Decoder};
use nisqplus_qec::error::QecError;
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use std::collections::HashSet;

/// The lookup table of one stabilizer sector.
#[derive(Debug, Clone)]
struct SectorTable {
    /// The sector's ancilla indices in syndrome-key bit order.
    ancillas: Vec<usize>,
    /// Key -> minimum-weight error support producing that syndrome.
    entries: Vec<Option<Vec<usize>>>,
}

/// A decoder backed by an exhaustive syndrome-to-correction table.
///
/// The table is built once per (lattice, sector) pair at construction time by
/// enumerating error patterns in order of increasing weight, so each syndrome
/// maps to one of its minimum-weight preimages.
#[derive(Debug, Clone)]
pub struct LookupDecoder {
    distance: usize,
    /// Sector tables in `[X, Z]` order.
    sectors: [SectorTable; 2],
}

impl LookupDecoder {
    /// The largest number of same-sector ancillas for which a table is built.
    ///
    /// `d = 3` has 6 ancillas per sector (64 syndromes); `d = 5` has 20
    /// (about a million syndromes), which is the practical ceiling.
    pub const MAX_TABLE_BITS: usize = 20;

    /// Builds lookup tables for both sectors of the given lattice.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidDistance`] if the lattice is too large for
    /// exhaustive enumeration (more than [`Self::MAX_TABLE_BITS`] ancillas in
    /// a sector).
    pub fn new(lattice: &Lattice) -> Result<Self, QecError> {
        let per_sector = lattice.ancillas_per_sector();
        if per_sector > Self::MAX_TABLE_BITS {
            return Err(QecError::InvalidDistance {
                distance: lattice.distance(),
            });
        }
        Ok(LookupDecoder {
            distance: lattice.distance(),
            sectors: [
                Self::build_table(lattice, Sector::X),
                Self::build_table(lattice, Sector::Z),
            ],
        })
    }

    /// The code distance the tables were built for.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// The stored minimum-weight correction support for a syndrome, borrowed
    /// straight from the table (no cloning).
    #[must_use]
    pub fn correction_support(
        &self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
    ) -> &[usize] {
        assert_eq!(
            lattice.distance(),
            self.distance,
            "lookup decoder was built for distance {} but used with distance {}",
            self.distance,
            lattice.distance()
        );
        let table = &self.sectors[sector.index()];
        let mut key = 0usize;
        for (bit, &a) in table.ancillas.iter().enumerate() {
            if syndrome.is_hot(a) {
                key |= 1 << bit;
            }
        }
        table
            .entries
            .get(key)
            .and_then(|entry| entry.as_deref())
            .unwrap_or_default()
    }

    fn build_table(lattice: &Lattice, sector: Sector) -> SectorTable {
        let ancillas: Vec<usize> = lattice.ancillas_in_sector(sector).collect();
        let mut bit_of = vec![0usize; lattice.num_ancillas()];
        for (i, &a) in ancillas.iter().enumerate() {
            bit_of[a] = i;
        }
        let num_syndromes = 1usize << ancillas.len();
        let mut entries: Vec<Option<Vec<usize>>> = vec![None; num_syndromes];
        entries[0] = Some(Vec::new());
        let mut remaining = num_syndromes - 1;

        let pauli = sector_correction_pauli(sector);
        let num_data = lattice.num_data();

        // Breadth-first enumeration over error weight: start from the empty
        // error and extend known minimum-weight patterns by one qubit at a
        // time, so the first pattern reaching a syndrome has minimum weight.
        let mut frontier: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
        while remaining > 0 && !frontier.is_empty() {
            let mut next_frontier: Vec<(usize, Vec<usize>)> = Vec::new();
            let mut seen_this_round: HashSet<usize> = HashSet::new();
            for (_, support) in &frontier {
                let start = support.last().map_or(0, |&q| q + 1);
                for q in start..num_data {
                    let mut new_support = support.clone();
                    new_support.push(q);
                    let error = PauliString::from_sparse(num_data, &new_support, pauli);
                    let syndrome = lattice.syndrome_of(&error);
                    let mut new_key = 0usize;
                    for a in lattice.defects(&syndrome, sector) {
                        new_key |= 1 << bit_of[a];
                    }
                    if entries[new_key].is_none() {
                        entries[new_key] = Some(new_support.clone());
                        remaining -= 1;
                    }
                    if seen_this_round.insert(new_key) {
                        next_frontier.push((new_key, new_support));
                    }
                }
            }
            frontier = next_frontier;
        }
        SectorTable { ancillas, entries }
    }
}

impl Decoder for LookupDecoder {
    fn name(&self) -> &str {
        "lookup-table"
    }

    fn prepare(&mut self, lattice: &Lattice) {
        // Tables are built at construction; preparing for a different
        // lattice rebuilds them, honouring the trait contract that prepared
        // state for a new lattice replaces the old.
        //
        // # Panics
        //
        // Panics if the new lattice exceeds [`Self::MAX_TABLE_BITS`] ancillas
        // per sector — exhaustive tables for it cannot exist at all.
        if lattice.distance() != self.distance {
            *self = LookupDecoder::new(lattice).unwrap_or_else(|_| {
                panic!(
                    "lookup decoder cannot be prepared for distance {}: more than {} ancillas \
                     per sector",
                    lattice.distance(),
                    Self::MAX_TABLE_BITS
                )
            });
        }
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let support = self.correction_support(lattice, syndrome, sector);
        let pauli = sector_correction_pauli(sector);
        Correction::from_pauli_string(PauliString::from_sparse(lattice.num_data(), support, pauli))
    }

    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut PauliString,
    ) {
        out.reset_identity(lattice.num_data());
        let pauli = sector_correction_pauli(sector);
        for &q in self.correction_support(lattice, syndrome, sector) {
            out.apply(q, pauli);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
    use nisqplus_qec::logical::{classify_residual, LogicalState};
    use nisqplus_qec::pauli::Pauli;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_large_lattices() {
        let lat = Lattice::new(7).unwrap();
        assert!(LookupDecoder::new(&lat).is_err());
    }

    #[test]
    fn builds_for_distance_three() {
        let lat = Lattice::new(3).unwrap();
        let decoder = LookupDecoder::new(&lat).unwrap();
        assert_eq!(decoder.distance(), 3);
        assert_eq!(decoder.name(), "lookup-table");
    }

    #[test]
    fn every_syndrome_has_a_table_entry() {
        let lat = Lattice::new(3).unwrap();
        let decoder = LookupDecoder::new(&lat).unwrap();
        for sector in Sector::ALL {
            let table = &decoder.sectors[sector.index()];
            assert_eq!(table.entries.len(), 1 << 6);
            assert_eq!(table.ancillas.len(), 6);
            for (key, entry) in table.entries.iter().enumerate() {
                assert!(entry.is_some(), "syndrome key {key} has no table entry");
            }
        }
    }

    #[test]
    fn corrections_always_clear_the_syndrome() {
        let lat = Lattice::new(3).unwrap();
        let mut decoder = LookupDecoder::new(&lat).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = PureDephasing::new(0.15).unwrap();
        for _ in 0..200 {
            let error = model.sample(&lat, &mut rng);
            let syndrome = lat.syndrome_of(&error);
            let correction = decoder.decode(&lat, &syndrome, Sector::X);
            let state = classify_residual(&lat, &error, correction.pauli_string(), Sector::X);
            assert_ne!(state, LogicalState::InvalidCorrection);
        }
    }

    #[test]
    fn decode_into_matches_decode_without_cloning() {
        let lat = Lattice::new(3).unwrap();
        let mut decoder = LookupDecoder::new(&lat).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let model = PureDephasing::new(0.2).unwrap();
        let mut buf = PauliString::identity(lat.num_data());
        for _ in 0..100 {
            let error = model.sample(&lat, &mut rng);
            let syndrome = lat.syndrome_of(&error);
            let via_decode = decoder.decode(&lat, &syndrome, Sector::X);
            decoder.decode_into(&lat, &syndrome, Sector::X, &mut buf);
            assert_eq!(&buf, via_decode.pauli_string());
            // The borrowed-slice accessor agrees with the correction weight.
            let support = decoder.correction_support(&lat, &syndrome, Sector::X);
            assert_eq!(support.len(), via_decode.weight());
        }
    }

    #[test]
    fn single_errors_are_always_corrected() {
        let lat = Lattice::new(3).unwrap();
        let mut decoder = LookupDecoder::new(&lat).unwrap();
        for q in 0..lat.num_data() {
            for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
                let error = PauliString::from_sparse(lat.num_data(), &[q], pauli);
                let syndrome = lat.syndrome_of(&error);
                let correction = decoder.decode(&lat, &syndrome, sector);
                assert_eq!(
                    classify_residual(&lat, &error, correction.pauli_string(), sector),
                    LogicalState::Success,
                    "lookup failed on single {pauli} at {q}"
                );
            }
        }
    }

    #[test]
    fn table_corrections_are_minimum_weight() {
        // The lookup correction can never be heavier than the actual error.
        let lat = Lattice::new(3).unwrap();
        let mut decoder = LookupDecoder::new(&lat).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let model = PureDephasing::new(0.1).unwrap();
        for _ in 0..100 {
            let error = model.sample(&lat, &mut rng);
            let syndrome = lat.syndrome_of(&error);
            let correction = decoder.decode(&lat, &syndrome, Sector::X);
            assert!(
                correction.weight() <= error.z_support().len(),
                "lookup correction weight {} exceeds error weight {}",
                correction.weight(),
                error.z_support().len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "built for distance")]
    fn using_wrong_distance_panics() {
        let lat3 = Lattice::new(3).unwrap();
        let lat5 = Lattice::new(5).unwrap();
        let mut decoder = LookupDecoder::new(&lat3).unwrap();
        let _ = decoder.decode(&lat5, &Syndrome::new(lat5.num_ancillas()), Sector::X);
    }

    #[test]
    fn preparing_same_lattice_is_a_noop() {
        let lat3 = Lattice::new(3).unwrap();
        let mut decoder = LookupDecoder::new(&lat3).unwrap();
        decoder.prepare(&lat3);
        assert_eq!(decoder.distance(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot be prepared for distance 7")]
    fn preparing_beyond_the_table_ceiling_panics() {
        let lat3 = Lattice::new(3).unwrap();
        let lat7 = Lattice::new(7).unwrap();
        let mut decoder = LookupDecoder::new(&lat3).unwrap();
        decoder.prepare(&lat7);
    }
}
