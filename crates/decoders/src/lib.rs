//! Baseline surface-code decoders for the NISQ+ reproduction.
//!
//! The paper positions its SFQ mesh decoder against the classical software
//! decoding landscape (Section IV): minimum-weight perfect matching, the
//! union-find decoder, lookup tables and neural networks.  This crate
//! implements the software baselines that can be run for real inside the
//! Monte-Carlo harness:
//!
//! * [`matching::GreedyMatchingDecoder`] — the sorted-edge greedy
//!   2-approximation of maximum-likelihood matching that the paper's hardware
//!   algorithm is modelled on (Section V-B),
//! * [`matching::ExactMatchingDecoder`] — exact minimum-weight matching
//!   (with boundary nodes) for the defect counts arising at the studied code
//!   distances; this is the "MWPM" baseline,
//! * [`union_find::UnionFindDecoder`] — the almost-linear-time union-find
//!   decoder of Delfosse and Nickerson,
//! * [`lookup::LookupDecoder`] — an exhaustive minimum-weight lookup table
//!   for small lattices (exact reference at `d = 3`).
//!
//! All decoders implement the common [`Decoder`] trait, as does the SFQ mesh
//! decoder in the `nisqplus-core` crate, so that every experiment can swap
//! decoders freely.
//!
//! # The amortized hot path
//!
//! The trait splits decoding into a one-off preparation and a steady-state
//! loop:
//!
//! * [`Decoder::prepare`] precomputes lattice-keyed state (sector graphs,
//!   flat index maps, edge templates) and sizes scratch arenas.  It is
//!   idempotent, optional (the first decode on an unseen lattice prepares
//!   lazily), and preparing for a new lattice replaces the old state.
//! * [`Decoder::decode_into`] overwrites a caller-owned
//!   [`PauliString`](nisqplus_qec::pauli::PauliString); for the prepared
//!   decoders in this crate the steady-state loop performs **zero** heap
//!   allocations (guarded by a counting global allocator in the `runtime`
//!   bench).
//! * Decoders may keep scratch between calls (hence `&mut self`) but must
//!   not carry information from one syndrome to the next — every round is an
//!   independent decoding problem, which is what lets the streaming runtime
//!   interleave many lattices through one prepared decoder.
//!
//! Worker pools construct per-thread instances through [`DecoderFactory`];
//! see `docs/ARCHITECTURE.md` at the repository root for the full pipeline.
//!
//! # Example
//!
//! ```rust
//! use nisqplus_decoders::{Decoder, matching::ExactMatchingDecoder};
//! use nisqplus_qec::lattice::{Lattice, Sector};
//! use nisqplus_qec::pauli::{Pauli, PauliString};
//! use nisqplus_qec::logical::{classify_residual, LogicalState};
//!
//! # fn main() -> Result<(), nisqplus_qec::QecError> {
//! let lattice = Lattice::new(5)?;
//! let error = PauliString::from_sparse(lattice.num_data(), &[7, 8], Pauli::Z);
//! let syndrome = lattice.syndrome_of(&error);
//! let mut decoder = ExactMatchingDecoder::new();
//! let correction = decoder.decode(&lattice, &syndrome, Sector::X);
//! let state = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
//! assert_eq!(state, LogicalState::Success);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lookup;
pub mod matching;
pub mod traits;
pub mod union_find;

pub use lookup::LookupDecoder;
pub use matching::{ExactMatchingDecoder, GreedyMatchingDecoder};
pub use traits::{
    Correction, Decoder, DecoderFactory, DynDecoder, MatchPair, Matching, SharedDecoderFactory,
};
pub use union_find::UnionFindDecoder;
