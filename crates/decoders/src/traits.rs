//! The common decoder interface and correction types.
//!
//! Every decoder in the workspace — the software baselines in this crate and
//! the SFQ mesh decoder in `nisqplus-core` — consumes a syndrome for one
//! stabilizer sector and produces a [`Correction`].  Decoders that work by
//! pairing defects also report the [`Matching`] they chose, which the
//! analysis code uses to study approximation quality.

use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::{Pauli, PauliString};
use nisqplus_qec::syndrome::Syndrome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One element of a defect pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchPair {
    /// Two detection events paired with each other (by ancilla index).
    Defects(usize, usize),
    /// A detection event paired with the nearest lattice boundary.
    ToBoundary(usize),
}

impl MatchPair {
    /// Returns a canonical form with defect indices in ascending order.
    #[must_use]
    pub fn canonical(self) -> MatchPair {
        match self {
            MatchPair::Defects(a, b) if a > b => MatchPair::Defects(b, a),
            other => other,
        }
    }

    /// The number of data qubits the corresponding correction chain crosses.
    #[must_use]
    pub fn chain_length(&self, lattice: &Lattice) -> usize {
        match *self {
            MatchPair::Defects(a, b) => lattice.ancilla_distance(a, b),
            MatchPair::ToBoundary(a) => lattice.boundary_distance(a),
        }
    }
}

/// A complete pairing of the detection events of one sector.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Matching {
    pairs: Vec<MatchPair>,
}

impl Matching {
    /// Creates an empty matching.
    #[must_use]
    pub fn new() -> Self {
        Matching { pairs: Vec::new() }
    }

    /// Creates a matching from a list of pairs.
    #[must_use]
    pub fn from_pairs(pairs: Vec<MatchPair>) -> Self {
        Matching { pairs }
    }

    /// Adds one pair to the matching.
    pub fn push(&mut self, pair: MatchPair) {
        self.pairs.push(pair);
    }

    /// The pairs of the matching.
    #[must_use]
    pub fn pairs(&self) -> &[MatchPair] {
        &self.pairs
    }

    /// The number of pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if the matching contains no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total chain length (number of data qubits) of the matching.
    #[must_use]
    pub fn total_weight(&self, lattice: &Lattice) -> usize {
        self.pairs.iter().map(|p| p.chain_length(lattice)).sum()
    }

    /// Returns `true` if every defect in `defects` appears exactly once.
    #[must_use]
    pub fn covers_exactly(&self, defects: &[usize]) -> bool {
        let mut seen = Vec::new();
        for pair in &self.pairs {
            match *pair {
                MatchPair::Defects(a, b) => {
                    seen.push(a);
                    seen.push(b);
                }
                MatchPair::ToBoundary(a) => seen.push(a),
            }
        }
        seen.sort_unstable();
        let mut expected = defects.to_vec();
        expected.sort_unstable();
        seen == expected
    }

    /// Converts the matching into a physical correction for the given sector.
    ///
    /// X-sector matchings correct Z errors (and vice versa), so the chain data
    /// qubits receive `Z` flips in the X sector and `X` flips in the Z sector.
    #[must_use]
    pub fn to_correction(&self, lattice: &Lattice, sector: Sector) -> Correction {
        let pauli = sector_correction_pauli(sector);
        let mut flips = PauliString::identity(lattice.num_data());
        for pair in &self.pairs {
            let path = match *pair {
                MatchPair::Defects(a, b) => lattice.correction_path(a, b),
                MatchPair::ToBoundary(a) => lattice.boundary_path(a),
            };
            for q in path {
                flips.apply(q, pauli);
            }
        }
        Correction {
            flips,
            matching: Some(self.clone()),
        }
    }
}

impl FromIterator<MatchPair> for Matching {
    fn from_iter<T: IntoIterator<Item = MatchPair>>(iter: T) -> Self {
        Matching {
            pairs: iter.into_iter().collect(),
        }
    }
}

/// The Pauli flip a correction applies in a given sector.
///
/// The X sector detects Z errors, so its corrections are Z flips; the Z
/// sector detects X errors and corrects with X flips.
#[must_use]
pub fn sector_correction_pauli(sector: Sector) -> Pauli {
    match sector {
        Sector::X => Pauli::Z,
        Sector::Z => Pauli::X,
    }
}

/// A decoder's output: the physical correction plus optional pairing metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Correction {
    flips: PauliString,
    matching: Option<Matching>,
}

impl Correction {
    /// Creates a correction directly from a Pauli string.
    #[must_use]
    pub fn from_pauli_string(flips: PauliString) -> Self {
        Correction {
            flips,
            matching: None,
        }
    }

    /// Creates an identity (do-nothing) correction on `num_data` qubits.
    #[must_use]
    pub fn identity(num_data: usize) -> Self {
        Correction {
            flips: PauliString::identity(num_data),
            matching: None,
        }
    }

    /// The Pauli flips to apply to the data qubits.
    #[must_use]
    pub fn pauli_string(&self) -> &PauliString {
        &self.flips
    }

    /// The defect pairing that produced the correction, when available.
    #[must_use]
    pub fn matching(&self) -> Option<&Matching> {
        self.matching.as_ref()
    }

    /// The number of data qubits flipped by the correction.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.flips.weight()
    }

    /// Consumes the correction, returning the underlying Pauli string.
    #[must_use]
    pub fn into_pauli_string(self) -> PauliString {
        self.flips
    }

    /// Composes another correction into this one (e.g. X-sector then Z-sector).
    ///
    /// # Panics
    ///
    /// Panics if the corrections act on different numbers of qubits.
    pub fn compose_with(&mut self, other: &Correction) {
        self.flips.compose_with(&other.flips);
        self.matching = None;
    }
}

impl fmt::Display for Correction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "correction of weight {}", self.weight())
    }
}

/// A surface-code decoder operating on one stabilizer sector at a time.
///
/// Decoders may keep internal scratch state between calls (hence `&mut self`)
/// but must not carry information from one syndrome to the next: every call
/// is an independent decoding problem.
///
/// `Send` is a supertrait so that decoders can be moved onto worker threads
/// (the streaming runtime hands one decoder instance to each worker) without
/// wrapper types; all decoders in the workspace are also `Sync`, which the
/// compile-time assertions in this crate's and `nisqplus-core`'s tests pin
/// down.
pub trait Decoder: Send {
    /// A short human-readable name for reports ("mwpm", "union-find", "sfq-mesh", ...).
    fn name(&self) -> &str;

    /// Precomputes lattice-keyed state (sector graphs, flat index maps, edge
    /// templates) and sizes the decoder's scratch arenas, so that subsequent
    /// [`Decoder::decode_into`] calls on the same lattice run the amortized
    /// hot path — ideally without any heap allocation.
    ///
    /// Calling `prepare` is optional: decoders that cache prepared state also
    /// build it lazily on the first `decode` call for an unseen lattice.  It
    /// is idempotent, and preparing for a new lattice replaces the state for
    /// the old one.  The default implementation is a no-op for decoders with
    /// nothing to precompute.
    fn prepare(&mut self, lattice: &Lattice) {
        let _ = lattice;
    }

    /// Decodes one sector's syndrome into a correction.
    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction;

    /// Decodes one sector's syndrome, overwriting `out` with the correction's
    /// Pauli flips (any previous contents of `out` are discarded).
    ///
    /// This is the amortized hot-path entry point: a caller that holds one
    /// `PauliString` buffer per sector can decode round after round without
    /// allocating, provided the decoder overrides this method (the fast
    /// decoders in this crate do).  Unlike [`Decoder::decode`], no
    /// [`Matching`] metadata is produced.
    ///
    /// The default implementation delegates to `decode` and copies the
    /// result, which is correct for every decoder but not allocation-free.
    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut PauliString,
    ) {
        let correction = self.decode(lattice, syndrome, sector);
        out.clone_from(correction.pauli_string());
    }

    /// Decodes both sectors and composes the two corrections.
    fn decode_both(&mut self, lattice: &Lattice, syndrome: &Syndrome) -> Correction {
        let mut correction = self.decode(lattice, syndrome, Sector::X);
        let z_part = self.decode(lattice, syndrome, Sector::Z);
        correction.compose_with(&z_part);
        correction
    }
}

impl<D: Decoder + ?Sized> Decoder for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn prepare(&mut self, lattice: &Lattice) {
        (**self).prepare(lattice);
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        (**self).decode(lattice, syndrome, sector)
    }

    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut PauliString,
    ) {
        (**self).decode_into(lattice, syndrome, sector, out);
    }

    fn decode_both(&mut self, lattice: &Lattice, syndrome: &Syndrome) -> Correction {
        (**self).decode_both(lattice, syndrome)
    }
}

/// A boxed decoder, movable across worker threads.
///
/// `Box<dyn Decoder>` itself implements [`Decoder`] (forwarding every
/// method), so wrappers generic over a `D: Decoder` — e.g. a throttling or
/// logging adapter — can wrap the product of any [`DecoderFactory`] without
/// knowing the concrete decoder type.
pub type DynDecoder = Box<dyn Decoder>;

/// A thread-shareable factory producing fresh decoder instances.
///
/// Worker pools cannot share one `&mut` decoder, so instead each worker asks
/// the factory for its own instance.  Any `Fn() -> DynDecoder` closure is a
/// factory:
///
/// ```rust
/// use nisqplus_decoders::{DecoderFactory, DynDecoder, GreedyMatchingDecoder};
///
/// let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;
/// let per_worker = factory.build();
/// assert_eq!(per_worker.name(), "greedy-matching");
/// ```
pub trait DecoderFactory: Send + Sync {
    /// Builds one fresh decoder instance (typically one per worker thread).
    fn build(&self) -> DynDecoder;
}

impl<F> DecoderFactory for F
where
    F: Fn() -> DynDecoder + Send + Sync,
{
    fn build(&self) -> DynDecoder {
        self()
    }
}

/// A reference-counted, thread-shareable decoder factory.
///
/// This is the currency of *heterogeneous* decoder assignment: a runtime can
/// hold one shared factory per lattice (or per distance class) and hand
/// clones of the `Arc` to every worker.  `Arc<dyn DecoderFactory>` itself
/// implements [`DecoderFactory`] by delegation, so shared and plain factories
/// are interchangeable at every call site.
pub type SharedDecoderFactory = std::sync::Arc<dyn DecoderFactory>;

impl DecoderFactory for SharedDecoderFactory {
    fn build(&self) -> DynDecoder {
        (**self).build()
    }
}

/// Sorts defect pairs by chain length (then lexicographically) — the shared
/// edge ordering used by the greedy decoders.
#[must_use]
pub fn sorted_defect_edges(lattice: &Lattice, defects: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut edges = Vec::new();
    for (i, &a) in defects.iter().enumerate() {
        for &b in &defects[i + 1..] {
            edges.push((lattice.ancilla_distance(a, b), a, b));
        }
    }
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::lattice::Lattice;

    fn lattice() -> Lattice {
        Lattice::new(5).unwrap()
    }

    #[test]
    fn match_pair_canonicalization() {
        assert_eq!(
            MatchPair::Defects(5, 2).canonical(),
            MatchPair::Defects(2, 5)
        );
        assert_eq!(
            MatchPair::Defects(1, 4).canonical(),
            MatchPair::Defects(1, 4)
        );
        assert_eq!(
            MatchPair::ToBoundary(3).canonical(),
            MatchPair::ToBoundary(3)
        );
    }

    #[test]
    fn matching_covers_exactly() {
        let m = Matching::from_pairs(vec![MatchPair::Defects(1, 4), MatchPair::ToBoundary(7)]);
        assert!(m.covers_exactly(&[1, 4, 7]));
        assert!(!m.covers_exactly(&[1, 4]));
        assert!(!m.covers_exactly(&[1, 4, 7, 9]));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn matching_to_correction_clears_syndrome() {
        let lat = lattice();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let (a, b) = (xs[2], xs[7]);
        let m = Matching::from_pairs(vec![MatchPair::Defects(a, b)]);
        let correction = m.to_correction(&lat, Sector::X);
        let syndrome = lat.syndrome_of(correction.pauli_string());
        let mut defects = lat.defects(&syndrome, Sector::X);
        defects.sort_unstable();
        let mut expected = vec![a, b];
        expected.sort_unstable();
        assert_eq!(defects, expected);
        assert_eq!(correction.weight(), lat.ancilla_distance(a, b));
        assert!(correction.matching().is_some());
    }

    #[test]
    fn sector_correction_paulis() {
        assert_eq!(sector_correction_pauli(Sector::X), Pauli::Z);
        assert_eq!(sector_correction_pauli(Sector::Z), Pauli::X);
    }

    #[test]
    fn correction_composition() {
        let mut a = Correction::from_pauli_string(PauliString::from_sparse(4, &[0], Pauli::Z));
        let b = Correction::from_pauli_string(PauliString::from_sparse(4, &[0, 1], Pauli::X));
        a.compose_with(&b);
        assert_eq!(a.weight(), 2);
        assert_eq!(a.pauli_string()[0], Pauli::Y);
        assert!(a.matching().is_none());
        assert_eq!(a.to_string(), "correction of weight 2");
    }

    #[test]
    fn sorted_edges_are_ascending() {
        let lat = lattice();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let defects = vec![xs[0], xs[3], xs[10], xs[15]];
        let edges = sorted_defect_edges(&lat, &defects);
        assert_eq!(edges.len(), 6);
        for w in edges.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn identity_correction_has_zero_weight() {
        let c = Correction::identity(10);
        assert_eq!(c.weight(), 0);
        assert_eq!(c.pauli_string().len(), 10);
    }

    /// Compile-time assertion: every decoder in this crate is `Send + Sync`,
    /// and boxed decoders can cross thread boundaries.  A decoder gaining a
    /// non-thread-safe field (`Rc`, raw pointer, ...) fails this at compile
    /// time, not at runtime inside the worker pool.
    #[test]
    fn decoders_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<crate::lookup::LookupDecoder>();
        assert_send_sync::<crate::matching::GreedyMatchingDecoder>();
        assert_send_sync::<crate::matching::ExactMatchingDecoder>();
        assert_send_sync::<crate::union_find::UnionFindDecoder>();
        assert_send::<super::DynDecoder>();
    }

    #[test]
    fn boxed_decoders_forward_the_trait() {
        use crate::matching::GreedyMatchingDecoder;
        let lat = lattice();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let syndrome =
            nisqplus_qec::syndrome::Syndrome::from_hot(lat.num_ancillas(), &[xs[0], xs[1]]);
        let mut plain = GreedyMatchingDecoder::new();
        let mut boxed: DynDecoder = Box::new(GreedyMatchingDecoder::new());
        assert_eq!(boxed.name(), plain.name());
        boxed.prepare(&lat);
        assert_eq!(
            boxed.decode(&lat, &syndrome, Sector::X),
            plain.decode(&lat, &syndrome, Sector::X)
        );
        let mut from_box = PauliString::identity(lat.num_data());
        let mut from_plain = PauliString::identity(lat.num_data());
        boxed.decode_into(&lat, &syndrome, Sector::X, &mut from_box);
        plain.decode_into(&lat, &syndrome, Sector::X, &mut from_plain);
        assert_eq!(from_box, from_plain);
        assert_eq!(
            boxed.decode_both(&lat, &syndrome),
            plain.decode_both(&lat, &syndrome)
        );
    }

    #[test]
    fn shared_factories_delegate() {
        use super::SharedDecoderFactory;
        use crate::matching::GreedyMatchingDecoder;
        let shared: SharedDecoderFactory =
            std::sync::Arc::new(|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
        assert_eq!(shared.build().name(), "greedy-matching");
        // The Arc is itself a factory, so it satisfies factory bounds.
        fn assert_factory<T: DecoderFactory>(_: &T) {}
        assert_factory(&shared);
        assert_factory(&shared.clone());
    }

    #[test]
    fn closure_factories_build_fresh_decoders() {
        use super::{DecoderFactory, DynDecoder};
        use crate::matching::GreedyMatchingDecoder;
        let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;
        let lat = lattice();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let syndrome =
            nisqplus_qec::syndrome::Syndrome::from_hot(lat.num_ancillas(), &[xs[0], xs[1]]);
        // Two workers building from the same factory decode independently and
        // identically.
        let mut a = factory.build();
        let mut b = factory.build();
        assert_eq!(a.name(), b.name());
        assert_eq!(
            a.decode(&lat, &syndrome, Sector::X),
            b.decode(&lat, &syndrome, Sector::X)
        );
        // Factories are shareable across threads.
        fn assert_factory<T: DecoderFactory>(_: &T) {}
        assert_factory(&factory);
    }
}
