//! The union-find decoder (Delfosse & Nickerson, "Almost-linear time decoding
//! algorithm for topological codes").
//!
//! Union-find is the fastest published *software* decoder the paper compares
//! against (Section VIII, "Comparison to existing approximation techniques"):
//! it trades a small amount of threshold (≈0.4%) for a large speed-up over
//! MWPM, but its decoding time still exceeds the syndrome-generation time, so
//! it remains exposed to the backlog problem.  We implement the standard
//! two-phase algorithm — cluster growth with half-edges and weighted union,
//! followed by peeling of the grown clusters — specialized to the
//! code-capacity setting used throughout the paper's accuracy evaluation.
//!
//! # Amortized hot path
//!
//! The decoding graph of a sector depends only on the lattice, never on the
//! syndrome, so the decoder caches a `SectorGraph` per sector — flat
//! `Vec`-indexed ancilla→vertex maps and a CSR adjacency over the full edge
//! set instead of the per-call `HashMap`s the first implementation rebuilt on
//! every round — plus a `UfScratch` arena of support/charge/visited/BFS
//! buffers.  After [`Decoder::prepare`] (or the first decode on a lattice),
//! steady-state [`Decoder::decode_into`] calls perform no heap allocation;
//! the runtime bench guards that invariant with an allocation counter.

use crate::traits::{sector_correction_pauli, Correction, Decoder};
use nisqplus_qec::lattice::{Lattice, QubitKind, Sector};
use nisqplus_qec::pauli::{Pauli, PauliString};
use nisqplus_qec::syndrome::Syndrome;

/// An edge of the sector's decoding graph.
#[derive(Debug, Clone, Copy)]
struct GraphEdge {
    u: u32,
    v: u32,
    /// The data qubit the edge crosses; flipping it toggles both endpoints.
    data_qubit: u32,
}

/// Sentinel in [`SectorGraph::vertex_of_ancilla`] for other-sector ancillas.
const NO_VERTEX: u32 = u32::MAX;

/// The decoding graph of one sector: same-sector ancillas plus two virtual
/// boundary vertices.  Built once per lattice and reused on every decode.
#[derive(Debug, Clone)]
struct SectorGraph {
    /// Number of real (ancilla) vertices.
    num_ancilla_vertices: usize,
    /// Total vertices including the two boundary vertices.
    num_vertices: usize,
    /// Flat map ancilla index -> local vertex index ([`NO_VERTEX`] when the
    /// ancilla belongs to the other sector).
    vertex_of_ancilla: Vec<u32>,
    edges: Vec<GraphEdge>,
    /// CSR adjacency over the full edge set: vertex `v`'s incident
    /// `(neighbor, edge index)` entries are
    /// `adj_entries[adj_offsets[v]..adj_offsets[v + 1]]`, in edge-index order.
    adj_offsets: Vec<u32>,
    adj_entries: Vec<(u32, u32)>,
    /// Peeling visit order: boundary vertices first (so they root the
    /// spanning forests and absorb unpaired charge), then ancilla vertices.
    peel_order: Vec<u32>,
}

impl SectorGraph {
    fn build(lattice: &Lattice, sector: Sector) -> Self {
        let ancillas: Vec<u32> = lattice
            .ancillas_in_sector(sector)
            .map(|a| a as u32)
            .collect();
        let mut vertex_of_ancilla = vec![NO_VERTEX; lattice.num_ancillas()];
        for (v, &a) in ancillas.iter().enumerate() {
            vertex_of_ancilla[a as usize] = v as u32;
        }
        let num_ancilla_vertices = ancillas.len();
        let boundary_a = num_ancilla_vertices as u32;
        let boundary_b = num_ancilla_vertices as u32 + 1;
        let size = lattice.size();
        let mut edges = Vec::new();

        for &a in &ancillas {
            let c = lattice.ancilla_coord(a as usize);
            let u = vertex_of_ancilla[a as usize];
            // Neighbour below (same column, +2 rows).
            if c.row + 2 < size {
                let below = nisqplus_qec::lattice::Coord::new(c.row + 2, c.col);
                let info = lattice.cell(below);
                if info.kind == sector.ancilla_kind() {
                    let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row + 1, c.col));
                    debug_assert_eq!(data.kind, QubitKind::Data);
                    edges.push(GraphEdge {
                        u,
                        v: vertex_of_ancilla[info.index],
                        data_qubit: data.index as u32,
                    });
                }
            }
            // Neighbour to the right (same row, +2 columns).
            if c.col + 2 < size {
                let right = nisqplus_qec::lattice::Coord::new(c.row, c.col + 2);
                let info = lattice.cell(right);
                if info.kind == sector.ancilla_kind() {
                    let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row, c.col + 1));
                    debug_assert_eq!(data.kind, QubitKind::Data);
                    edges.push(GraphEdge {
                        u,
                        v: vertex_of_ancilla[info.index],
                        data_qubit: data.index as u32,
                    });
                }
            }
            // Boundary edges.
            match sector {
                Sector::X => {
                    if c.row == 1 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(0, c.col));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_a,
                            data_qubit: data.index as u32,
                        });
                    }
                    if c.row == size - 2 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(size - 1, c.col));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_b,
                            data_qubit: data.index as u32,
                        });
                    }
                }
                Sector::Z => {
                    if c.col == 1 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row, 0));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_a,
                            data_qubit: data.index as u32,
                        });
                    }
                    if c.col == size - 2 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row, size - 1));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_b,
                            data_qubit: data.index as u32,
                        });
                    }
                }
            }
        }

        let num_vertices = num_ancilla_vertices + 2;

        // CSR adjacency: count degrees, prefix-sum, fill in edge order so
        // each vertex's incident entries are sorted by edge index.
        let mut degree = vec![0u32; num_vertices];
        for edge in &edges {
            degree[edge.u as usize] += 1;
            degree[edge.v as usize] += 1;
        }
        let mut adj_offsets = vec![0u32; num_vertices + 1];
        for v in 0..num_vertices {
            adj_offsets[v + 1] = adj_offsets[v] + degree[v];
        }
        let mut cursor = adj_offsets[..num_vertices].to_vec();
        let mut adj_entries = vec![(0u32, 0u32); 2 * edges.len()];
        for (i, edge) in edges.iter().enumerate() {
            adj_entries[cursor[edge.u as usize] as usize] = (edge.v, i as u32);
            cursor[edge.u as usize] += 1;
            adj_entries[cursor[edge.v as usize] as usize] = (edge.u, i as u32);
            cursor[edge.v as usize] += 1;
        }

        let peel_order: Vec<u32> = (num_ancilla_vertices as u32..num_vertices as u32)
            .chain(0..num_ancilla_vertices as u32)
            .collect();

        SectorGraph {
            num_ancilla_vertices,
            num_vertices,
            vertex_of_ancilla,
            edges,
            adj_offsets,
            adj_entries,
            peel_order,
        }
    }

    fn is_boundary_vertex(&self, v: u32) -> bool {
        v as usize >= self.num_ancilla_vertices
    }

    fn incident(&self, v: u32) -> &[(u32, u32)] {
        let lo = self.adj_offsets[v as usize] as usize;
        let hi = self.adj_offsets[v as usize + 1] as usize;
        &self.adj_entries[lo..hi]
    }
}

/// The reusable scratch arena of one decode call: union-find forests, edge
/// support, peeling charge and BFS buffers.  All vectors retain their
/// allocations between rounds; [`UfScratch::reset`] only refills them.
#[derive(Debug, Clone, Default)]
struct UfScratch {
    parent: Vec<u32>,
    rank: Vec<u8>,
    parity: Vec<bool>,
    boundary: Vec<bool>,
    support: Vec<u8>,
    charge: Vec<bool>,
    visited: Vec<bool>,
    bfs: Vec<u32>,
    parent_edge: Vec<(u32, u32)>,
    newly_full: Vec<u32>,
}

impl UfScratch {
    /// Pre-sizes every buffer for a graph, so later resets never allocate.
    fn reserve_for(&mut self, graph: &SectorGraph) {
        let nv = graph.num_vertices;
        let ne = graph.edges.len();
        self.parent.reserve(nv);
        self.rank.reserve(nv);
        self.parity.reserve(nv);
        self.boundary.reserve(nv);
        self.charge.reserve(nv);
        self.visited.reserve(nv);
        self.parent_edge.reserve(nv);
        self.bfs.reserve(nv);
        self.support.reserve(ne);
        self.newly_full.reserve(ne);
    }

    /// Refills the buffers for a fresh decode on `graph` (allocation-free
    /// once [`UfScratch::reserve_for`] has run for this graph).
    fn reset(&mut self, graph: &SectorGraph) {
        let nv = graph.num_vertices;
        self.parent.clear();
        self.parent.extend(0..nv as u32);
        self.rank.clear();
        self.rank.resize(nv, 0);
        self.parity.clear();
        self.parity.resize(nv, false);
        self.boundary.clear();
        self.boundary.resize(nv, false);
        for v in graph.num_ancilla_vertices..nv {
            self.boundary[v] = true;
        }
        self.charge.clear();
        self.charge.resize(nv, false);
        self.visited.clear();
        self.visited.resize(nv, false);
        self.parent_edge.clear();
        self.parent_edge.resize(nv, (0, 0));
        self.support.clear();
        self.support.resize(graph.edges.len(), 0);
        self.bfs.clear();
        self.newly_full.clear();
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Full path compression, matching the seed's recursive find.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (big, small) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        if self.rank[big as usize] == self.rank[small as usize] {
            self.rank[big as usize] += 1;
        }
        self.parity[big as usize] ^= self.parity[small as usize];
        self.boundary[big as usize] |= self.boundary[small as usize];
    }

    /// A cluster is *active* while it holds odd defect parity and does not
    /// touch a boundary vertex.
    fn is_active_root(&self, root: u32) -> bool {
        self.parity[root as usize] && !self.boundary[root as usize]
    }
}

/// The lattice-keyed prepared state: one decoding graph per sector plus the
/// shared scratch arena.
#[derive(Debug, Clone)]
struct PreparedUnionFind {
    distance: usize,
    /// Sector graphs in `[X, Z]` order.
    graphs: [SectorGraph; 2],
    scratch: UfScratch,
}

/// The union-find decoder.
#[derive(Debug, Clone, Default)]
pub struct UnionFindDecoder {
    prepared: Option<PreparedUnionFind>,
}

impl UnionFindDecoder {
    /// Creates a union-find decoder.
    #[must_use]
    pub fn new() -> Self {
        UnionFindDecoder { prepared: None }
    }

    /// Returns `true` if prepared state for `lattice` is cached.
    #[must_use]
    pub fn is_prepared_for(&self, lattice: &Lattice) -> bool {
        self.prepared
            .as_ref()
            .is_some_and(|p| p.distance == lattice.distance())
    }

    fn ensure_prepared(&mut self, lattice: &Lattice) -> &mut PreparedUnionFind {
        if !self.is_prepared_for(lattice) {
            let graphs = [
                SectorGraph::build(lattice, Sector::X),
                SectorGraph::build(lattice, Sector::Z),
            ];
            let mut scratch = UfScratch::default();
            scratch.reserve_for(&graphs[0]);
            scratch.reserve_for(&graphs[1]);
            self.prepared = Some(PreparedUnionFind {
                distance: lattice.distance(),
                graphs,
                scratch,
            });
        }
        self.prepared.as_mut().expect("just prepared")
    }
}

/// Decodes one sector, applying the correction's data-qubit flips to `out`.
///
/// This is the seed algorithm verbatim — same growth rounds, same union
/// order, same peeling traversal — re-hosted on the prepared graph and the
/// scratch arena, so corrections are byte-identical to the original
/// implementation (pinned by the seed-reference property test).
fn decode_sector_into(
    graph: &SectorGraph,
    scratch: &mut UfScratch,
    lattice: &Lattice,
    syndrome: &Syndrome,
    pauli: Pauli,
    out: &mut PauliString,
) {
    scratch.reset(graph);
    // Flat-map defect fill: hot ancillas of the other sector map to
    // `NO_VERTEX` and are skipped, so a combined X/Z syndrome works directly.
    let mut any_defect = false;
    for (a, &v) in graph.vertex_of_ancilla.iter().enumerate() {
        if v != NO_VERTEX && syndrome.is_hot(a) {
            scratch.parity[v as usize] = true;
            scratch.charge[v as usize] = true;
            any_defect = true;
        }
    }
    if !any_defect {
        return;
    }

    // ---- Growth phase ------------------------------------------------
    // Grow every active cluster's incident edges by one half-edge per
    // round, merging clusters whose connecting edge becomes fully grown.
    let max_rounds = 4 * lattice.size() + 8;
    for _ in 0..max_rounds {
        let any_active = (0..graph.num_vertices as u32).any(|v| {
            let root = scratch.find(v);
            root == v && scratch.is_active_root(root)
        });
        if !any_active {
            break;
        }
        scratch.newly_full.clear();
        for (i, edge) in graph.edges.iter().enumerate() {
            if scratch.support[i] >= 2 {
                continue;
            }
            let ru = scratch.find(edge.u);
            let rv = scratch.find(edge.v);
            if scratch.is_active_root(ru) || scratch.is_active_root(rv) {
                scratch.support[i] += 1;
                if scratch.support[i] == 2 {
                    scratch.newly_full.push(i as u32);
                }
            }
        }
        for k in 0..scratch.newly_full.len() {
            let edge = graph.edges[scratch.newly_full[k] as usize];
            scratch.union(edge.u, edge.v);
        }
    }

    // ---- Peeling phase -----------------------------------------------
    // Within each cluster, build a spanning forest of the fully-grown
    // edges (rooted at a boundary vertex when one is present) and peel
    // leaves, emitting an edge whenever the leaf carries a defect.  The
    // forest edges are the fully-grown intra-cluster edges, read straight
    // off the prepared CSR adjacency.
    for oi in 0..graph.peel_order.len() {
        let start = graph.peel_order[oi];
        if scratch.visited[start as usize] {
            continue;
        }
        // BFS spanning tree.
        scratch.visited[start as usize] = true;
        scratch.bfs.clear();
        scratch.bfs.push(start);
        let mut head = 0;
        while head < scratch.bfs.len() {
            let v = scratch.bfs[head];
            head += 1;
            let rv = scratch.find(v);
            for &(w, edge_idx) in graph.incident(v) {
                if scratch.support[edge_idx as usize] != 2 {
                    continue;
                }
                if scratch.find(w) != rv {
                    continue;
                }
                if !scratch.visited[w as usize] {
                    scratch.visited[w as usize] = true;
                    scratch.parent_edge[w as usize] = (v, edge_idx);
                    scratch.bfs.push(w);
                }
            }
        }
        // Peel in reverse BFS order: children before parents.  Boundary
        // vertices absorb any charge pushed into them instead of relaying
        // it (pairing the chain to the boundary).
        for bi in (1..scratch.bfs.len()).rev() {
            let v = scratch.bfs[bi];
            if graph.is_boundary_vertex(v) {
                scratch.charge[v as usize] = false;
                continue;
            }
            if scratch.charge[v as usize] {
                let (parent, edge_idx) = scratch.parent_edge[v as usize];
                out.apply(graph.edges[edge_idx as usize].data_qubit as usize, pauli);
                scratch.charge[v as usize] = false;
                scratch.charge[parent as usize] ^= true;
            }
        }
        // Any residual charge on the root must sit on a boundary vertex
        // (odd clusters always grow until they absorb a boundary).
        if scratch.charge[start as usize] {
            debug_assert!(
                graph.is_boundary_vertex(start),
                "non-boundary root left with residual charge"
            );
            scratch.charge[start as usize] = false;
        }
    }
}

impl Decoder for UnionFindDecoder {
    fn name(&self) -> &str {
        "union-find"
    }

    fn prepare(&mut self, lattice: &Lattice) {
        let _ = self.ensure_prepared(lattice);
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let mut flips = PauliString::identity(lattice.num_data());
        self.decode_into(lattice, syndrome, sector, &mut flips);
        Correction::from_pauli_string(flips)
    }

    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut PauliString,
    ) {
        assert_eq!(
            syndrome.len(),
            lattice.num_ancillas(),
            "syndrome length {} does not match {} ancillas",
            syndrome.len(),
            lattice.num_ancillas()
        );
        out.reset_identity(lattice.num_data());
        let pauli = sector_correction_pauli(sector);
        let prepared = self.ensure_prepared(lattice);
        let graph = &prepared.graphs[sector.index()];
        decode_sector_into(graph, &mut prepared.scratch, lattice, syndrome, pauli, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
    use nisqplus_qec::lattice::Coord;
    use nisqplus_qec::logical::{classify_residual, LogicalState};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph_has_expected_vertex_and_edge_counts() {
        let lat = Lattice::new(5).unwrap();
        let graph = SectorGraph::build(&lat, Sector::X);
        // d(d-1) ancilla vertices plus 2 boundary vertices.
        assert_eq!(graph.num_ancilla_vertices, 5 * 4);
        assert_eq!(graph.num_vertices, 22);
        // Internal edges: vertical (d-2)*d + horizontal (d-1)*(d-1); boundary edges: 2*d.
        let d = 5;
        let expected = (d - 2) * d + (d - 1) * (d - 1) + 2 * d;
        assert_eq!(graph.edges.len(), expected);
        // The CSR adjacency covers every edge from both endpoints.
        assert_eq!(graph.adj_entries.len(), 2 * expected);
        assert_eq!(graph.peel_order.len(), graph.num_vertices);
        // The flat ancilla map enumerates this sector's ancillas in vertex
        // order and maps the other sector's ancillas to the sentinel.
        let mapped: Vec<u32> = graph
            .vertex_of_ancilla
            .iter()
            .copied()
            .filter(|&v| v != NO_VERTEX)
            .collect();
        assert_eq!(
            mapped,
            (0..graph.num_ancilla_vertices as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn csr_incidence_matches_edge_list() {
        let lat = Lattice::new(7).unwrap();
        for sector in Sector::ALL {
            let graph = SectorGraph::build(&lat, sector);
            for (i, edge) in graph.edges.iter().enumerate() {
                assert!(graph.incident(edge.u).contains(&(edge.v, i as u32)));
                assert!(graph.incident(edge.v).contains(&(edge.u, i as u32)));
            }
        }
    }

    #[test]
    fn empty_syndrome_gives_identity() {
        let lat = Lattice::new(5).unwrap();
        let mut decoder = UnionFindDecoder::new();
        let c = decoder.decode(&lat, &Syndrome::new(lat.num_ancillas()), Sector::X);
        assert_eq!(c.weight(), 0);
    }

    #[test]
    fn prepare_caches_and_rebuilds_on_lattice_change() {
        let lat5 = Lattice::new(5).unwrap();
        let lat7 = Lattice::new(7).unwrap();
        let mut decoder = UnionFindDecoder::new();
        assert!(!decoder.is_prepared_for(&lat5));
        decoder.prepare(&lat5);
        assert!(decoder.is_prepared_for(&lat5));
        assert!(!decoder.is_prepared_for(&lat7));
        // Decoding on a different lattice transparently re-prepares.
        let c = decoder.decode(&lat7, &Syndrome::new(lat7.num_ancillas()), Sector::X);
        assert_eq!(c.weight(), 0);
        assert!(decoder.is_prepared_for(&lat7));
    }

    #[test]
    fn corrects_every_single_qubit_error() {
        for d in [3, 5, 7] {
            let lat = Lattice::new(d).unwrap();
            let mut decoder = UnionFindDecoder::new();
            for q in 0..lat.num_data() {
                for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
                    let error = PauliString::from_sparse(lat.num_data(), &[q], pauli);
                    let syndrome = lat.syndrome_of(&error);
                    let correction = decoder.decode(&lat, &syndrome, sector);
                    assert_eq!(
                        classify_residual(&lat, &error, correction.pauli_string(), sector),
                        LogicalState::Success,
                        "union-find failed on single {pauli} error at qubit {q}, d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrects_short_chains() {
        let lat = Lattice::new(7).unwrap();
        let mut decoder = UnionFindDecoder::new();
        let q1 = lat.cell(Coord::new(6, 6)).index;
        let q2 = lat.cell(Coord::new(6, 8)).index;
        let q3 = lat.cell(Coord::new(8, 6)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q1, q2, q3], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let correction = decoder.decode(&lat, &syndrome, Sector::X);
        assert_eq!(
            classify_residual(&lat, &error, correction.pauli_string(), Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn correction_always_clears_syndrome_under_random_errors() {
        // Even when union-find picks a logically wrong chain, its correction
        // must always return the state to the codespace.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let model = PureDephasing::new(0.12).unwrap();
        for d in [3, 5, 7] {
            let lat = Lattice::new(d).unwrap();
            let mut decoder = UnionFindDecoder::new();
            for _ in 0..60 {
                let error = model.sample(&lat, &mut rng);
                let syndrome = lat.syndrome_of(&error);
                let correction = decoder.decode(&lat, &syndrome, Sector::X);
                let state = classify_residual(&lat, &error, correction.pauli_string(), Sector::X);
                assert_ne!(
                    state,
                    LogicalState::InvalidCorrection,
                    "union-find produced a syndrome-violating correction at d={d}"
                );
            }
        }
    }

    #[test]
    fn decode_into_matches_decode_and_overwrites_stale_contents() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let model = PureDephasing::new(0.1).unwrap();
        let lat = Lattice::new(7).unwrap();
        let mut decoder = UnionFindDecoder::new();
        decoder.prepare(&lat);
        // A deliberately stale, wrongly-sized buffer: decode_into must reset it.
        let mut buf = PauliString::from_sparse(3, &[0, 1, 2], Pauli::Y);
        for _ in 0..40 {
            let error = model.sample(&lat, &mut rng);
            let syndrome = lat.syndrome_of(&error);
            let via_decode = decoder.decode(&lat, &syndrome, Sector::X);
            decoder.decode_into(&lat, &syndrome, Sector::X, &mut buf);
            assert_eq!(&buf, via_decode.pauli_string());
        }
    }

    #[test]
    fn boundary_errors_are_matched_to_boundary() {
        let lat = Lattice::new(5).unwrap();
        let mut decoder = UnionFindDecoder::new();
        // A single error adjacent to the top boundary produces one defect.
        let q = lat.cell(Coord::new(0, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        assert_eq!(lat.defects(&syndrome, Sector::X).len(), 1);
        let correction = decoder.decode(&lat, &syndrome, Sector::X);
        assert_eq!(
            classify_residual(&lat, &error, correction.pauli_string(), Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn decoder_name() {
        assert_eq!(UnionFindDecoder::new().name(), "union-find");
    }
}
