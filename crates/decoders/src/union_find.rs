//! The union-find decoder (Delfosse & Nickerson, "Almost-linear time decoding
//! algorithm for topological codes").
//!
//! Union-find is the fastest published *software* decoder the paper compares
//! against (Section VIII, "Comparison to existing approximation techniques"):
//! it trades a small amount of threshold (≈0.4%) for a large speed-up over
//! MWPM, but its decoding time still exceeds the syndrome-generation time, so
//! it remains exposed to the backlog problem.  We implement the standard
//! two-phase algorithm — cluster growth with half-edges and weighted union,
//! followed by peeling of the grown clusters — specialized to the
//! code-capacity setting used throughout the paper's accuracy evaluation.

use crate::traits::{sector_correction_pauli, Correction, Decoder};
use nisqplus_qec::lattice::{Lattice, QubitKind, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use std::collections::HashMap;

/// An edge of the sector's decoding graph.
#[derive(Debug, Clone, Copy)]
struct GraphEdge {
    u: usize,
    v: usize,
    /// The data qubit the edge crosses; flipping it toggles both endpoints.
    data_qubit: usize,
}

/// The decoding graph of one sector: same-sector ancillas plus two virtual
/// boundary vertices.
#[derive(Debug, Clone)]
struct SectorGraph {
    /// Number of real (ancilla) vertices.
    num_ancilla_vertices: usize,
    /// Total vertices including the two boundary vertices.
    num_vertices: usize,
    /// Maps ancilla index -> local vertex index.
    vertex_of_ancilla: HashMap<usize, usize>,
    edges: Vec<GraphEdge>,
}

impl SectorGraph {
    fn build(lattice: &Lattice, sector: Sector) -> Self {
        let ancillas: Vec<usize> = lattice.ancillas_in_sector(sector).collect();
        let vertex_of_ancilla: HashMap<usize, usize> =
            ancillas.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let num_ancilla_vertices = ancillas.len();
        let boundary_a = num_ancilla_vertices;
        let boundary_b = num_ancilla_vertices + 1;
        let size = lattice.size();
        let mut edges = Vec::new();

        // Map from grid coordinate to ancilla index for neighbour lookups.
        let mut ancilla_at = HashMap::new();
        for &a in &ancillas {
            ancilla_at.insert(lattice.ancilla_coord(a), a);
        }

        for &a in &ancillas {
            let c = lattice.ancilla_coord(a);
            let u = vertex_of_ancilla[&a];
            // Neighbour below (same column, +2 rows).
            if c.row + 2 < size {
                let below = nisqplus_qec::lattice::Coord::new(c.row + 2, c.col);
                if let Some(&b) = ancilla_at.get(&below) {
                    let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row + 1, c.col));
                    debug_assert_eq!(data.kind, QubitKind::Data);
                    edges.push(GraphEdge {
                        u,
                        v: vertex_of_ancilla[&b],
                        data_qubit: data.index,
                    });
                }
            }
            // Neighbour to the right (same row, +2 columns).
            if c.col + 2 < size {
                let right = nisqplus_qec::lattice::Coord::new(c.row, c.col + 2);
                if let Some(&b) = ancilla_at.get(&right) {
                    let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row, c.col + 1));
                    debug_assert_eq!(data.kind, QubitKind::Data);
                    edges.push(GraphEdge {
                        u,
                        v: vertex_of_ancilla[&b],
                        data_qubit: data.index,
                    });
                }
            }
            // Boundary edges.
            match sector {
                Sector::X => {
                    if c.row == 1 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(0, c.col));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_a,
                            data_qubit: data.index,
                        });
                    }
                    if c.row == size - 2 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(size - 1, c.col));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_b,
                            data_qubit: data.index,
                        });
                    }
                }
                Sector::Z => {
                    if c.col == 1 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row, 0));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_a,
                            data_qubit: data.index,
                        });
                    }
                    if c.col == size - 2 {
                        let data = lattice.cell(nisqplus_qec::lattice::Coord::new(c.row, size - 1));
                        edges.push(GraphEdge {
                            u,
                            v: boundary_b,
                            data_qubit: data.index,
                        });
                    }
                }
            }
        }

        SectorGraph {
            num_ancilla_vertices,
            num_vertices: num_ancilla_vertices + 2,
            vertex_of_ancilla,
            edges,
        }
    }

    fn is_boundary_vertex(&self, v: usize) -> bool {
        v >= self.num_ancilla_vertices
    }
}

/// Weighted union-find with parity and boundary tracking.
#[derive(Debug, Clone)]
struct Clusters {
    parent: Vec<usize>,
    rank: Vec<u32>,
    parity: Vec<bool>,
    touches_boundary: Vec<bool>,
}

impl Clusters {
    fn new(num_vertices: usize, defects: &[bool], boundary_from: usize) -> Self {
        Clusters {
            parent: (0..num_vertices).collect(),
            rank: vec![0; num_vertices],
            parity: defects.to_vec(),
            touches_boundary: (0..num_vertices).map(|v| v >= boundary_from).collect(),
        }
    }

    fn find(&mut self, v: usize) -> usize {
        if self.parent[v] != v {
            let root = self.find(self.parent[v]);
            self.parent[v] = root;
        }
        self.parent[v]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.parity[big] ^= self.parity[small];
        self.touches_boundary[big] |= self.touches_boundary[small];
    }

    /// A cluster is *active* while it holds odd defect parity and does not
    /// touch a boundary vertex.
    fn is_active_root(&self, root: usize) -> bool {
        self.parity[root] && !self.touches_boundary[root]
    }
}

/// The union-find decoder.
#[derive(Debug, Clone, Default)]
pub struct UnionFindDecoder {
    _private: (),
}

impl UnionFindDecoder {
    /// Creates a union-find decoder.
    #[must_use]
    pub fn new() -> Self {
        UnionFindDecoder { _private: () }
    }

    fn decode_sector(&self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Vec<usize> {
        let graph = SectorGraph::build(lattice, sector);
        let defect_ancillas = lattice.defects(syndrome, sector);
        if defect_ancillas.is_empty() {
            return Vec::new();
        }
        let mut defects = vec![false; graph.num_vertices];
        for a in &defect_ancillas {
            defects[graph.vertex_of_ancilla[a]] = true;
        }
        let mut clusters = Clusters::new(graph.num_vertices, &defects, graph.num_ancilla_vertices);
        let mut support = vec![0u8; graph.edges.len()];

        // ---- Growth phase ------------------------------------------------
        // Grow every active cluster's incident edges by one half-edge per
        // round, merging clusters whose connecting edge becomes fully grown.
        let max_rounds = 4 * lattice.size() + 8;
        for _ in 0..max_rounds {
            let any_active = (0..graph.num_vertices).any(|v| {
                let root = clusters.find(v);
                root == v && clusters.is_active_root(root)
            });
            if !any_active {
                break;
            }
            let mut newly_full = Vec::new();
            for (i, edge) in graph.edges.iter().enumerate() {
                if support[i] >= 2 {
                    continue;
                }
                let ru = clusters.find(edge.u);
                let rv = clusters.find(edge.v);
                if clusters.is_active_root(ru) || clusters.is_active_root(rv) {
                    support[i] += 1;
                    if support[i] == 2 {
                        newly_full.push(i);
                    }
                }
            }
            for i in newly_full {
                let edge = graph.edges[i];
                clusters.union(edge.u, edge.v);
            }
        }

        // ---- Peeling phase -----------------------------------------------
        // Within each cluster, build a spanning forest of the fully-grown
        // edges (rooted at a boundary vertex when one is present) and peel
        // leaves, emitting an edge whenever the leaf carries a defect.
        let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_vertices];
        for (i, edge) in graph.edges.iter().enumerate() {
            if support[i] == 2 && clusters.find(edge.u) == clusters.find(edge.v) {
                adjacency[edge.u].push((edge.v, i));
                adjacency[edge.v].push((edge.u, i));
            }
        }

        let mut correction = Vec::new();
        let mut visited = vec![false; graph.num_vertices];
        let mut charge = defects;

        // Visit boundary vertices first so they become tree roots and can
        // absorb unpaired charge.
        let order: Vec<usize> = (graph.num_ancilla_vertices..graph.num_vertices)
            .chain(0..graph.num_ancilla_vertices)
            .collect();
        for start in order {
            if visited[start] {
                continue;
            }
            // BFS spanning tree.
            visited[start] = true;
            let mut bfs = vec![start];
            let mut parent_edge: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut head = 0;
            while head < bfs.len() {
                let v = bfs[head];
                head += 1;
                for &(w, edge_idx) in &adjacency[v] {
                    if !visited[w] {
                        visited[w] = true;
                        parent_edge.insert(w, (v, edge_idx));
                        bfs.push(w);
                    }
                }
            }
            // Peel in reverse BFS order: children before parents.  Boundary
            // vertices absorb any charge pushed into them instead of relaying
            // it (pairing the chain to the boundary).
            for &v in bfs.iter().rev() {
                if v == start {
                    break;
                }
                if graph.is_boundary_vertex(v) {
                    charge[v] = false;
                    continue;
                }
                if charge[v] {
                    let (parent, edge_idx) = parent_edge[&v];
                    correction.push(graph.edges[edge_idx].data_qubit);
                    charge[v] = false;
                    charge[parent] ^= true;
                }
            }
            // Any residual charge on the root must sit on a boundary vertex
            // (odd clusters always grow until they absorb a boundary).
            if charge[start] {
                debug_assert!(
                    graph.is_boundary_vertex(start),
                    "non-boundary root left with residual charge"
                );
                charge[start] = false;
            }
        }
        correction
    }
}

impl Decoder for UnionFindDecoder {
    fn name(&self) -> &str {
        "union-find"
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let data_qubits = self.decode_sector(lattice, syndrome, sector);
        let pauli = sector_correction_pauli(sector);
        let mut flips = PauliString::identity(lattice.num_data());
        for q in data_qubits {
            flips.apply(q, pauli);
        }
        Correction::from_pauli_string(flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
    use nisqplus_qec::lattice::Coord;
    use nisqplus_qec::logical::{classify_residual, LogicalState};
    use nisqplus_qec::pauli::Pauli;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph_has_expected_vertex_and_edge_counts() {
        let lat = Lattice::new(5).unwrap();
        let graph = SectorGraph::build(&lat, Sector::X);
        // d(d-1) ancilla vertices plus 2 boundary vertices.
        assert_eq!(graph.num_ancilla_vertices, 5 * 4);
        assert_eq!(graph.num_vertices, 22);
        // Internal edges: vertical (d-2)*d + horizontal (d-1)*(d-1); boundary edges: 2*d.
        let d = 5;
        let expected = (d - 2) * d + (d - 1) * (d - 1) + 2 * d;
        assert_eq!(graph.edges.len(), expected);
    }

    #[test]
    fn empty_syndrome_gives_identity() {
        let lat = Lattice::new(5).unwrap();
        let mut decoder = UnionFindDecoder::new();
        let c = decoder.decode(&lat, &Syndrome::new(lat.num_ancillas()), Sector::X);
        assert_eq!(c.weight(), 0);
    }

    #[test]
    fn corrects_every_single_qubit_error() {
        for d in [3, 5, 7] {
            let lat = Lattice::new(d).unwrap();
            let mut decoder = UnionFindDecoder::new();
            for q in 0..lat.num_data() {
                for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
                    let error = PauliString::from_sparse(lat.num_data(), &[q], pauli);
                    let syndrome = lat.syndrome_of(&error);
                    let correction = decoder.decode(&lat, &syndrome, sector);
                    assert_eq!(
                        classify_residual(&lat, &error, correction.pauli_string(), sector),
                        LogicalState::Success,
                        "union-find failed on single {pauli} error at qubit {q}, d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrects_short_chains() {
        let lat = Lattice::new(7).unwrap();
        let mut decoder = UnionFindDecoder::new();
        let q1 = lat.cell(Coord::new(6, 6)).index;
        let q2 = lat.cell(Coord::new(6, 8)).index;
        let q3 = lat.cell(Coord::new(8, 6)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q1, q2, q3], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let correction = decoder.decode(&lat, &syndrome, Sector::X);
        assert_eq!(
            classify_residual(&lat, &error, correction.pauli_string(), Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn correction_always_clears_syndrome_under_random_errors() {
        // Even when union-find picks a logically wrong chain, its correction
        // must always return the state to the codespace.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let model = PureDephasing::new(0.12).unwrap();
        for d in [3, 5, 7] {
            let lat = Lattice::new(d).unwrap();
            let mut decoder = UnionFindDecoder::new();
            for _ in 0..60 {
                let error = model.sample(&lat, &mut rng);
                let syndrome = lat.syndrome_of(&error);
                let correction = decoder.decode(&lat, &syndrome, Sector::X);
                let state = classify_residual(&lat, &error, correction.pauli_string(), Sector::X);
                assert_ne!(
                    state,
                    LogicalState::InvalidCorrection,
                    "union-find produced a syndrome-violating correction at d={d}"
                );
            }
        }
    }

    #[test]
    fn boundary_errors_are_matched_to_boundary() {
        let lat = Lattice::new(5).unwrap();
        let mut decoder = UnionFindDecoder::new();
        // A single error adjacent to the top boundary produces one defect.
        let q = lat.cell(Coord::new(0, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        assert_eq!(lat.defects(&syndrome, Sector::X).len(), 1);
        let correction = decoder.decode(&lat, &syndrome, Sector::X);
        assert_eq!(
            classify_residual(&lat, &error, correction.pauli_string(), Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn decoder_name() {
        assert_eq!(UnionFindDecoder::new().name(), "union-find");
    }
}
