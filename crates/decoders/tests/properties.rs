//! Property-based tests for the baseline decoders, including the
//! seed-reference equivalence suite: the amortized prepared/scratch decode
//! paths must produce *byte-identical* corrections to the original per-call
//! implementations they replaced.

use nisqplus_decoders::{
    Decoder, ExactMatchingDecoder, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::{classify_residual, LogicalState};
use nisqplus_qec::pauli::{Pauli, PauliString};
use nisqplus_qec::syndrome::Syndrome;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_distance() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5), Just(7)]
}

fn arb_sector() -> impl Strategy<Value = Sector> {
    prop_oneof![Just(Sector::X), Just(Sector::Z)]
}

/// The seed repository's union-find `decode_sector`, kept verbatim as the
/// reference the rewritten prepared/scratch implementation is pinned against:
/// per-call `HashMap` sector graph, recursive union-find, `HashMap` BFS
/// parent map.  (Mirrors `UnionFindDecoder::decode_sector` at the PR 2 tip.)
mod seed_union_find {
    use nisqplus_qec::lattice::{Coord, Lattice, Sector};
    use nisqplus_qec::syndrome::Syndrome;
    use std::collections::HashMap;

    #[derive(Clone, Copy)]
    struct GraphEdge {
        u: usize,
        v: usize,
        data_qubit: usize,
    }

    struct SectorGraph {
        num_ancilla_vertices: usize,
        num_vertices: usize,
        vertex_of_ancilla: HashMap<usize, usize>,
        edges: Vec<GraphEdge>,
    }

    impl SectorGraph {
        fn build(lattice: &Lattice, sector: Sector) -> Self {
            let ancillas: Vec<usize> = lattice.ancillas_in_sector(sector).collect();
            let vertex_of_ancilla: HashMap<usize, usize> =
                ancillas.iter().enumerate().map(|(i, &a)| (a, i)).collect();
            let num_ancilla_vertices = ancillas.len();
            let boundary_a = num_ancilla_vertices;
            let boundary_b = num_ancilla_vertices + 1;
            let size = lattice.size();
            let mut edges = Vec::new();

            let mut ancilla_at = HashMap::new();
            for &a in &ancillas {
                ancilla_at.insert(lattice.ancilla_coord(a), a);
            }

            for &a in &ancillas {
                let c = lattice.ancilla_coord(a);
                let u = vertex_of_ancilla[&a];
                if c.row + 2 < size {
                    let below = Coord::new(c.row + 2, c.col);
                    if let Some(&b) = ancilla_at.get(&below) {
                        let data = lattice.cell(Coord::new(c.row + 1, c.col));
                        edges.push(GraphEdge {
                            u,
                            v: vertex_of_ancilla[&b],
                            data_qubit: data.index,
                        });
                    }
                }
                if c.col + 2 < size {
                    let right = Coord::new(c.row, c.col + 2);
                    if let Some(&b) = ancilla_at.get(&right) {
                        let data = lattice.cell(Coord::new(c.row, c.col + 1));
                        edges.push(GraphEdge {
                            u,
                            v: vertex_of_ancilla[&b],
                            data_qubit: data.index,
                        });
                    }
                }
                match sector {
                    Sector::X => {
                        if c.row == 1 {
                            let data = lattice.cell(Coord::new(0, c.col));
                            edges.push(GraphEdge {
                                u,
                                v: boundary_a,
                                data_qubit: data.index,
                            });
                        }
                        if c.row == size - 2 {
                            let data = lattice.cell(Coord::new(size - 1, c.col));
                            edges.push(GraphEdge {
                                u,
                                v: boundary_b,
                                data_qubit: data.index,
                            });
                        }
                    }
                    Sector::Z => {
                        if c.col == 1 {
                            let data = lattice.cell(Coord::new(c.row, 0));
                            edges.push(GraphEdge {
                                u,
                                v: boundary_a,
                                data_qubit: data.index,
                            });
                        }
                        if c.col == size - 2 {
                            let data = lattice.cell(Coord::new(c.row, size - 1));
                            edges.push(GraphEdge {
                                u,
                                v: boundary_b,
                                data_qubit: data.index,
                            });
                        }
                    }
                }
            }

            SectorGraph {
                num_ancilla_vertices,
                num_vertices: num_ancilla_vertices + 2,
                vertex_of_ancilla,
                edges,
            }
        }

        fn is_boundary_vertex(&self, v: usize) -> bool {
            v >= self.num_ancilla_vertices
        }
    }

    struct Clusters {
        parent: Vec<usize>,
        rank: Vec<u32>,
        parity: Vec<bool>,
        touches_boundary: Vec<bool>,
    }

    impl Clusters {
        fn new(num_vertices: usize, defects: &[bool], boundary_from: usize) -> Self {
            Clusters {
                parent: (0..num_vertices).collect(),
                rank: vec![0; num_vertices],
                parity: defects.to_vec(),
                touches_boundary: (0..num_vertices).map(|v| v >= boundary_from).collect(),
            }
        }

        fn find(&mut self, v: usize) -> usize {
            if self.parent[v] != v {
                let root = self.find(self.parent[v]);
                self.parent[v] = root;
            }
            self.parent[v]
        }

        fn union(&mut self, a: usize, b: usize) {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return;
            }
            let (big, small) = if self.rank[ra] >= self.rank[rb] {
                (ra, rb)
            } else {
                (rb, ra)
            };
            self.parent[small] = big;
            if self.rank[big] == self.rank[small] {
                self.rank[big] += 1;
            }
            self.parity[big] ^= self.parity[small];
            self.touches_boundary[big] |= self.touches_boundary[small];
        }

        fn is_active_root(&self, root: usize) -> bool {
            self.parity[root] && !self.touches_boundary[root]
        }
    }

    /// The seed decode: returns the correction's data-qubit indices in the
    /// exact order the seed implementation emitted them.
    pub fn decode_sector(lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Vec<usize> {
        let graph = SectorGraph::build(lattice, sector);
        let defect_ancillas = lattice.defects(syndrome, sector);
        if defect_ancillas.is_empty() {
            return Vec::new();
        }
        let mut defects = vec![false; graph.num_vertices];
        for a in &defect_ancillas {
            defects[graph.vertex_of_ancilla[a]] = true;
        }
        let mut clusters = Clusters::new(graph.num_vertices, &defects, graph.num_ancilla_vertices);
        let mut support = vec![0u8; graph.edges.len()];

        let max_rounds = 4 * lattice.size() + 8;
        for _ in 0..max_rounds {
            let any_active = (0..graph.num_vertices).any(|v| {
                let root = clusters.find(v);
                root == v && clusters.is_active_root(root)
            });
            if !any_active {
                break;
            }
            let mut newly_full = Vec::new();
            for (i, edge) in graph.edges.iter().enumerate() {
                if support[i] >= 2 {
                    continue;
                }
                let ru = clusters.find(edge.u);
                let rv = clusters.find(edge.v);
                if clusters.is_active_root(ru) || clusters.is_active_root(rv) {
                    support[i] += 1;
                    if support[i] == 2 {
                        newly_full.push(i);
                    }
                }
            }
            for i in newly_full {
                let edge = graph.edges[i];
                clusters.union(edge.u, edge.v);
            }
        }

        let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_vertices];
        for (i, edge) in graph.edges.iter().enumerate() {
            if support[i] == 2 && clusters.find(edge.u) == clusters.find(edge.v) {
                adjacency[edge.u].push((edge.v, i));
                adjacency[edge.v].push((edge.u, i));
            }
        }

        let mut correction = Vec::new();
        let mut visited = vec![false; graph.num_vertices];
        let mut charge = defects;

        let order: Vec<usize> = (graph.num_ancilla_vertices..graph.num_vertices)
            .chain(0..graph.num_ancilla_vertices)
            .collect();
        for start in order {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut bfs = vec![start];
            let mut parent_edge: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut head = 0;
            while head < bfs.len() {
                let v = bfs[head];
                head += 1;
                for &(w, edge_idx) in &adjacency[v] {
                    if !visited[w] {
                        visited[w] = true;
                        parent_edge.insert(w, (v, edge_idx));
                        bfs.push(w);
                    }
                }
            }
            for &v in bfs.iter().rev() {
                if v == start {
                    break;
                }
                if graph.is_boundary_vertex(v) {
                    charge[v] = false;
                    continue;
                }
                if charge[v] {
                    let (parent, edge_idx) = parent_edge[&v];
                    correction.push(graph.edges[edge_idx].data_qubit);
                    charge[v] = false;
                    charge[parent] ^= true;
                }
            }
            if charge[start] {
                charge[start] = false;
            }
        }
        correction
    }
}

/// Samples a syndrome stream deterministically from a seed.
fn seeded_syndromes(lattice: &Lattice, seed: u64, count: usize) -> Vec<Syndrome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = PureDephasing::new(0.08).unwrap();
    (0..count)
        .map(|_| {
            // Dephasing errors fire only the X sector, so fold in a reversed
            // copy as X errors via a second sample to exercise the Z sector
            // too: decode both sectors of the union syndrome.
            let z_part = model.sample(lattice, &mut rng);
            let x_part = model.sample(lattice, &mut rng);
            let mut combined = lattice.syndrome_of(&z_part);
            let mut x_errors = PauliString::identity(lattice.num_data());
            for (q, p) in x_part.z_support().iter().map(|&q| (q, Pauli::X)) {
                x_errors.apply(q, p);
            }
            combined.xor_with(&lattice.syndrome_of(&x_errors));
            combined
        })
        .collect()
}

fn error_from(lattice: &Lattice, raw: &[usize], pauli: Pauli) -> PauliString {
    let support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
    PauliString::from_sparse(lattice.num_data(), &support, pauli)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The rewritten union-find (cached sector graphs, flat maps, scratch
    /// arenas) emits corrections byte-identical to the seed implementation,
    /// across seeds x distances x sectors, through both `decode` and the
    /// allocation-free `decode_into`.
    #[test]
    fn union_find_matches_seed_implementation(
        seed in 0u64..10_000,
        d in arb_distance(),
        sector in arb_sector(),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let mut decoder = UnionFindDecoder::new();
        decoder.prepare(&lattice);
        let mut buf = PauliString::identity(lattice.num_data());
        for syndrome in seeded_syndromes(&lattice, seed, 8) {
            let seed_qubits = seed_union_find::decode_sector(&lattice, &syndrome, sector);
            let pauli = nisqplus_decoders::traits::sector_correction_pauli(sector);
            let mut expected = PauliString::identity(lattice.num_data());
            for q in seed_qubits {
                expected.apply(q, pauli);
            }
            let correction = decoder.decode(&lattice, &syndrome, sector);
            prop_assert_eq!(correction.pauli_string(), &expected);
            decoder.decode_into(&lattice, &syndrome, sector, &mut buf);
            prop_assert_eq!(&buf, &expected);
        }
    }

    /// The greedy decoder's scratch-arena `decode_into` matches the seed
    /// decode path (`match_defects` + `Matching::to_correction`, unchanged
    /// from the seed) byte for byte, across seeds x distances x sectors.
    #[test]
    fn greedy_decode_into_matches_seed_path(
        seed in 0u64..10_000,
        d in arb_distance(),
        sector in arb_sector(),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let mut decoder = GreedyMatchingDecoder::new();
        decoder.prepare(&lattice);
        let mut buf = PauliString::identity(lattice.num_data());
        for syndrome in seeded_syndromes(&lattice, seed, 8) {
            let defects = lattice.defects(&syndrome, sector);
            let expected = decoder
                .match_defects(&lattice, &defects)
                .to_correction(&lattice, sector);
            decoder.decode_into(&lattice, &syndrome, sector, &mut buf);
            prop_assert_eq!(&buf, expected.pauli_string());
        }
    }

    /// The lookup decoder's borrowed-slice `decode_into` matches the cloning
    /// decode path byte for byte (d = 3 only: the table ceiling).
    #[test]
    fn lookup_decode_into_matches_decode(
        seed in 0u64..10_000,
        sector in arb_sector(),
    ) {
        let lattice = Lattice::new(3).unwrap();
        let mut decoder = LookupDecoder::new(&lattice).unwrap();
        let mut buf = PauliString::identity(lattice.num_data());
        for syndrome in seeded_syndromes(&lattice, seed, 8) {
            let expected = decoder.decode(&lattice, &syndrome, sector);
            decoder.decode_into(&lattice, &syndrome, sector, &mut buf);
            prop_assert_eq!(&buf, expected.pauli_string());
        }
    }

    /// Every decoder's correction clears the syndrome it was given — no
    /// decoder is allowed to produce an invalid correction in its own sector.
    #[test]
    fn corrections_always_return_to_codespace(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..12),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let error = error_from(&lattice, &raw, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(ExactMatchingDecoder::new()),
            Box::new(GreedyMatchingDecoder::new()),
            Box::new(UnionFindDecoder::new()),
        ];
        for mut decoder in decoders {
            let correction = decoder.decode(&lattice, &syndrome, Sector::X);
            let state = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
            prop_assert_ne!(
                state,
                LogicalState::InvalidCorrection,
                "{} left a residual syndrome",
                decoder.name()
            );
        }
    }

    /// Errors of weight at most (d-1)/2 are always corrected by the exact
    /// matching decoder (the defining property of a distance-d code).
    #[test]
    fn exact_decoder_corrects_low_weight_errors(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..3),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let mut support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
        support.sort_unstable();
        support.dedup();
        support.truncate((d - 1) / 2);
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let mut decoder = ExactMatchingDecoder::new();
        let correction = decoder.decode(&lattice, &syndrome, Sector::X);
        prop_assert_eq!(
            classify_residual(&lattice, &error, correction.pauli_string(), Sector::X),
            LogicalState::Success
        );
    }

    /// Greedy matching weight is within a factor of two of exact matching
    /// weight (it is a 2-approximation).
    #[test]
    fn greedy_is_a_two_approximation(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..10),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let error = error_from(&lattice, &raw, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let defects = lattice.defects(&syndrome, Sector::X);
        let exact = ExactMatchingDecoder::new().match_defects(&lattice, &defects);
        let greedy = GreedyMatchingDecoder::new().match_defects(&lattice, &defects);
        let we = exact.total_weight(&lattice);
        let wg = greedy.total_weight(&lattice);
        prop_assert!(we <= wg);
        prop_assert!(wg <= 2 * we.max(1));
        prop_assert!(exact.covers_exactly(&defects));
        prop_assert!(greedy.covers_exactly(&defects));
    }

    /// Decoding is symmetric between the sectors: an X-error pattern decoded
    /// in the Z sector behaves like the transposed Z-error pattern decoded in
    /// the X sector.
    #[test]
    fn both_sectors_decode_single_errors(
        d in arb_distance(),
        q in 0usize..1000,
    ) {
        let lattice = Lattice::new(d).unwrap();
        let q = q % lattice.num_data();
        for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
            let error = PauliString::from_sparse(lattice.num_data(), &[q], pauli);
            let syndrome = lattice.syndrome_of(&error);
            let mut decoder = UnionFindDecoder::new();
            let correction = decoder.decode(&lattice, &syndrome, sector);
            prop_assert_eq!(
                classify_residual(&lattice, &error, correction.pauli_string(), sector),
                LogicalState::Success
            );
        }
    }
}
