//! Property-based tests for the baseline decoders.

use nisqplus_decoders::{Decoder, ExactMatchingDecoder, GreedyMatchingDecoder, UnionFindDecoder};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::{classify_residual, LogicalState};
use nisqplus_qec::pauli::{Pauli, PauliString};
use proptest::prelude::*;

fn arb_distance() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5), Just(7)]
}

fn error_from(lattice: &Lattice, raw: &[usize], pauli: Pauli) -> PauliString {
    let support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
    PauliString::from_sparse(lattice.num_data(), &support, pauli)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every decoder's correction clears the syndrome it was given — no
    /// decoder is allowed to produce an invalid correction in its own sector.
    #[test]
    fn corrections_always_return_to_codespace(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..12),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let error = error_from(&lattice, &raw, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(ExactMatchingDecoder::new()),
            Box::new(GreedyMatchingDecoder::new()),
            Box::new(UnionFindDecoder::new()),
        ];
        for mut decoder in decoders {
            let correction = decoder.decode(&lattice, &syndrome, Sector::X);
            let state = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
            prop_assert_ne!(
                state,
                LogicalState::InvalidCorrection,
                "{} left a residual syndrome",
                decoder.name()
            );
        }
    }

    /// Errors of weight at most (d-1)/2 are always corrected by the exact
    /// matching decoder (the defining property of a distance-d code).
    #[test]
    fn exact_decoder_corrects_low_weight_errors(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..3),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let mut support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
        support.sort_unstable();
        support.dedup();
        support.truncate((d - 1) / 2);
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let mut decoder = ExactMatchingDecoder::new();
        let correction = decoder.decode(&lattice, &syndrome, Sector::X);
        prop_assert_eq!(
            classify_residual(&lattice, &error, correction.pauli_string(), Sector::X),
            LogicalState::Success
        );
    }

    /// Greedy matching weight is within a factor of two of exact matching
    /// weight (it is a 2-approximation).
    #[test]
    fn greedy_is_a_two_approximation(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..10),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let error = error_from(&lattice, &raw, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let defects = lattice.defects(&syndrome, Sector::X);
        let exact = ExactMatchingDecoder::new().match_defects(&lattice, &defects);
        let greedy = GreedyMatchingDecoder::new().match_defects(&lattice, &defects);
        let we = exact.total_weight(&lattice);
        let wg = greedy.total_weight(&lattice);
        prop_assert!(we <= wg);
        prop_assert!(wg <= 2 * we.max(1));
        prop_assert!(exact.covers_exactly(&defects));
        prop_assert!(greedy.covers_exactly(&defects));
    }

    /// Decoding is symmetric between the sectors: an X-error pattern decoded
    /// in the Z sector behaves like the transposed Z-error pattern decoded in
    /// the X sector.
    #[test]
    fn both_sectors_decode_single_errors(
        d in arb_distance(),
        q in 0usize..1000,
    ) {
        let lattice = Lattice::new(d).unwrap();
        let q = q % lattice.num_data();
        for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
            let error = PauliString::from_sparse(lattice.num_data(), &[q], pauli);
            let syndrome = lattice.syndrome_of(&error);
            let mut decoder = UnionFindDecoder::new();
            let correction = decoder.decode(&lattice, &syndrome, sector);
            prop_assert_eq!(
                classify_residual(&lattice, &error, correction.pauli_string(), sector),
                LogicalState::Success
            );
        }
    }
}
