//! The quantum benchmark circuits of Table I.
//!
//! The paper's execution-time analysis (Figure 6) runs five Clifford+T
//! subroutines drawn from Barenco et al.'s elementary-gate constructions:
//! two reversible adders (Cuccaro and Takahashi) and three multi-controlled
//! NOT constructions.  For the backlog analysis only the *schedule* of gates
//! matters — how many gates there are and where the T gates fall — so each
//! benchmark is represented by its gate counts plus a generated gate sequence
//! with the T gates spread through the circuit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical gate in a Clifford+T schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogicalGate {
    /// Any Clifford gate: commutes with the Pauli frame, never blocks on the decoder.
    Clifford,
    /// A T gate: requires the Pauli frame (and hence all outstanding
    /// syndromes) to be resolved before it can execute.
    T,
}

/// A benchmark circuit characterised by its gate counts (one row of Table I).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkCircuit {
    name: String,
    qubits: usize,
    total_gates: usize,
    t_gates: usize,
}

impl BenchmarkCircuit {
    /// Creates a benchmark from explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if `t_gates > total_gates`.
    #[must_use]
    pub fn new(name: impl Into<String>, qubits: usize, total_gates: usize, t_gates: usize) -> Self {
        assert!(
            t_gates <= total_gates,
            "a circuit cannot have more T gates than gates"
        );
        BenchmarkCircuit {
            name: name.into(),
            qubits,
            total_gates,
            t_gates,
        }
    }

    /// The Takahashi adder (optimised reversible adder): 40 qubits, 740 gates, 266 T gates.
    #[must_use]
    pub fn takahashi_adder() -> Self {
        BenchmarkCircuit::new("takahashi adder", 40, 740, 266)
    }

    /// The Barenco half-dirty multi-control Toffoli: 39 qubits, 1224 gates, 504 T gates.
    #[must_use]
    pub fn barenco_half_dirty_toffoli() -> Self {
        BenchmarkCircuit::new("barenco half dirty toffoli", 39, 1224, 504)
    }

    /// The multi-control Toffoli with O(n) dirty ancillas: 37 qubits, 1156 gates, 476 T gates.
    #[must_use]
    pub fn cnu_half_borrowed() -> Self {
        BenchmarkCircuit::new("cnu half borrowed", 37, 1156, 476)
    }

    /// The logarithmic-depth multi-control NOT: 39 qubits, 629 gates, 259 T gates.
    #[must_use]
    pub fn cnx_log_depth() -> Self {
        BenchmarkCircuit::new("cnx log depth", 39, 629, 259)
    }

    /// The Cuccaro linear-depth adder: 42 qubits, 821 gates, 280 T gates.
    #[must_use]
    pub fn cuccaro_adder() -> Self {
        BenchmarkCircuit::new("cuccaro adder", 42, 821, 280)
    }

    /// The 100-qubit multiply-controlled NOT used in the Section III example:
    /// roughly 2356 gates of which 686 are T gates after decomposition.
    #[must_use]
    pub fn multiply_controlled_not_100() -> Self {
        BenchmarkCircuit::new("multiply-controlled not (100 qubits)", 100, 2356, 686)
    }

    /// The benchmark's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of logical qubits the benchmark uses.
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// The total gate count.
    #[must_use]
    pub fn total_gates(&self) -> usize {
        self.total_gates
    }

    /// The T-gate count.
    #[must_use]
    pub fn t_gates(&self) -> usize {
        self.t_gates
    }

    /// The fraction of gates that are T gates.
    #[must_use]
    pub fn t_fraction(&self) -> f64 {
        if self.total_gates == 0 {
            0.0
        } else {
            self.t_gates as f64 / self.total_gates as f64
        }
    }

    /// Generates a gate schedule with the benchmark's counts, spreading the T
    /// gates as evenly as possible through the circuit.
    #[must_use]
    pub fn gate_sequence(&self) -> Vec<LogicalGate> {
        let mut sequence = Vec::with_capacity(self.total_gates);
        if self.total_gates == 0 {
            return sequence;
        }
        let mut t_emitted = 0usize;
        for i in 0..self.total_gates {
            // Emit a T gate whenever the running T fraction falls behind.
            let target = (i + 1) * self.t_gates / self.total_gates;
            if t_emitted < target {
                sequence.push(LogicalGate::T);
                t_emitted += 1;
            } else {
                sequence.push(LogicalGate::Clifford);
            }
        }
        // Fix up any rounding shortfall at the end of the schedule.
        let mut idx = self.total_gates;
        while t_emitted < self.t_gates && idx > 0 {
            idx -= 1;
            if sequence[idx] == LogicalGate::Clifford {
                sequence[idx] = LogicalGate::T;
                t_emitted += 1;
            }
        }
        sequence
    }
}

impl fmt::Display for BenchmarkCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} gates, {} T gates)",
            self.name, self.qubits, self.total_gates, self.t_gates
        )
    }
}

/// The five benchmarks of Table I, in the paper's order.
#[must_use]
pub fn standard_benchmarks() -> Vec<BenchmarkCircuit> {
    vec![
        BenchmarkCircuit::takahashi_adder(),
        BenchmarkCircuit::barenco_half_dirty_toffoli(),
        BenchmarkCircuit::cnu_half_borrowed(),
        BenchmarkCircuit::cnx_log_depth(),
        BenchmarkCircuit::cuccaro_adder(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_counts_are_reproduced() {
        let expected = [
            ("takahashi adder", 40, 740, 266),
            ("barenco half dirty toffoli", 39, 1224, 504),
            ("cnu half borrowed", 37, 1156, 476),
            ("cnx log depth", 39, 629, 259),
            ("cuccaro adder", 42, 821, 280),
        ];
        let benchmarks = standard_benchmarks();
        assert_eq!(benchmarks.len(), expected.len());
        for (bench, (name, qubits, gates, t)) in benchmarks.iter().zip(expected) {
            assert_eq!(bench.name(), name);
            assert_eq!(bench.qubits(), qubits);
            assert_eq!(bench.total_gates(), gates);
            assert_eq!(bench.t_gates(), t);
        }
    }

    #[test]
    fn gate_sequence_has_exact_counts() {
        for bench in standard_benchmarks() {
            let sequence = bench.gate_sequence();
            assert_eq!(sequence.len(), bench.total_gates());
            let t_count = sequence.iter().filter(|g| **g == LogicalGate::T).count();
            assert_eq!(t_count, bench.t_gates(), "{}", bench.name());
        }
    }

    #[test]
    fn t_gates_are_spread_out() {
        let bench = BenchmarkCircuit::cuccaro_adder();
        let sequence = bench.gate_sequence();
        // No prefix of the schedule should contain a wildly disproportionate
        // share of the T gates.
        let half: usize = sequence[..sequence.len() / 2]
            .iter()
            .filter(|g| **g == LogicalGate::T)
            .count();
        let ratio = half as f64 / bench.t_gates() as f64;
        assert!((0.4..=0.6).contains(&ratio), "half-point T ratio {ratio}");
    }

    #[test]
    fn section_three_example_counts() {
        let mcx = BenchmarkCircuit::multiply_controlled_not_100();
        assert_eq!(mcx.qubits(), 100);
        assert_eq!(mcx.t_gates(), 686);
        assert!(mcx.t_fraction() > 0.25 && mcx.t_fraction() < 0.35);
    }

    #[test]
    fn display_formats_counts() {
        let s = BenchmarkCircuit::takahashi_adder().to_string();
        assert!(s.contains("takahashi"));
        assert!(s.contains("740"));
    }

    #[test]
    #[should_panic(expected = "more T gates")]
    fn invalid_counts_panic() {
        let _ = BenchmarkCircuit::new("bad", 1, 5, 6);
    }
}
