//! Required-code-distance comparison across decoders (Figure 11).
//!
//! Figure 11 asks: to run an algorithm with 100 T gates at a fixed target
//! reliability, what code distance does each decoder need?  Two effects
//! matter: the decoder's intrinsic accuracy (threshold and effective-distance
//! factor) and the decoding backlog.  A decoder slower than syndrome
//! generation stalls at every T gate, and the extra syndrome-measurement
//! rounds accumulated while stalled all contribute to the logical failure
//! budget, inflating the code distance it needs — by roughly 10x at the
//! error rates of interest.

use crate::backlog::BacklogModel;
use crate::benchmarks::BenchmarkCircuit;
use crate::sqv::ScalingModel;
use serde::{Deserialize, Serialize};

/// Accuracy and latency profile of one decoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderProfile {
    /// Display name.
    pub name: String,
    /// The logical-error-rate scaling model of the decoder.
    pub model: ScalingModel,
    /// Decode latency per syndrome-generation cycle's worth of data, in
    /// nanoseconds.
    pub decode_latency_ns: f64,
    /// Whether the backlog penalty applies (set to `false` for the
    /// theoretical backlog-free reference decoder).
    pub subject_to_backlog: bool,
}

impl DecoderProfile {
    /// The SFQ mesh decoder: approximate accuracy (Table V), but a decode
    /// time of at most ~20 ns per round — far below syndrome generation.
    #[must_use]
    pub fn sfq(distance_hint: usize) -> Self {
        DecoderProfile {
            name: "SFQ Decoder".into(),
            model: ScalingModel::sfq_paper(distance_hint),
            decode_latency_ns: 20.0,
            subject_to_backlog: true,
        }
    }

    /// Software minimum-weight perfect matching: ideal accuracy, but orders
    /// of magnitude slower than syndrome generation once communication with
    /// the cryostat is included.
    #[must_use]
    pub fn mwpm() -> Self {
        DecoderProfile {
            name: "MWPM".into(),
            model: ScalingModel::ideal_mwpm(),
            decode_latency_ns: 100_000.0,
            subject_to_backlog: true,
        }
    }

    /// The neural-network decoder of Chamberland & Ronagh: ~800 ns inference.
    #[must_use]
    pub fn neural_network() -> Self {
        DecoderProfile {
            name: "NNet".into(),
            model: ScalingModel {
                c1: 0.03,
                pth: 0.08,
                c2: 0.45,
            },
            decode_latency_ns: 800.0,
            subject_to_backlog: true,
        }
    }

    /// The union-find decoder: almost MWPM accuracy (threshold lower by
    /// ~0.4%), still more than twice as slow as syndrome generation.
    #[must_use]
    pub fn union_find() -> Self {
        DecoderProfile {
            name: "Union Find".into(),
            model: ScalingModel {
                c1: 0.03,
                pth: 0.099,
                c2: 0.5,
            },
            decode_latency_ns: 900.0,
            subject_to_backlog: true,
        }
    }

    /// A hypothetical MWPM decoder with the backlog ignored — the reference
    /// line of Figure 11.
    #[must_use]
    pub fn mwpm_without_backlog() -> Self {
        DecoderProfile {
            name: "MWPM Without Backlog".into(),
            model: ScalingModel::ideal_mwpm(),
            decode_latency_ns: 100_000.0,
            subject_to_backlog: false,
        }
    }

    /// The standard panel of Figure 11, in plotting order.
    #[must_use]
    pub fn figure_11_panel() -> Vec<DecoderProfile> {
        vec![
            DecoderProfile::sfq(5),
            DecoderProfile::mwpm(),
            DecoderProfile::neural_network(),
            DecoderProfile::union_find(),
            DecoderProfile::mwpm_without_backlog(),
        ]
    }
}

/// Parameters of the required-distance calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonSetup {
    /// Number of T gates in the algorithm (the paper uses 100).
    pub t_gates: usize,
    /// Syndrome generation cycle in nanoseconds.
    pub syndrome_cycle_ns: f64,
    /// Acceptable total failure probability for the whole algorithm.
    pub target_failure: f64,
    /// Largest code distance considered before giving up.
    pub max_distance: usize,
}

impl Default for ComparisonSetup {
    fn default() -> Self {
        ComparisonSetup {
            t_gates: 100,
            syndrome_cycle_ns: 400.0,
            target_failure: 0.5,
            max_distance: 2001,
        }
    }
}

/// The effective number of error-correction rounds each logical gate is
/// exposed to, once the decoder's backlog is accounted for.
#[must_use]
pub fn effective_rounds_per_gate(profile: &DecoderProfile, setup: &ComparisonSetup) -> f64 {
    let d_rounds = 1.0f64; // one measurement round per logical gate at minimum
    if !profile.subject_to_backlog {
        return d_rounds;
    }
    let model = BacklogModel::new(setup.syndrome_cycle_ns, profile.decode_latency_ns.max(1e-3));
    let ratio = model.ratio();
    if ratio <= 1.0 {
        return d_rounds;
    }
    // The algorithm (t_gates gates, all of them T for the purpose of the
    // bound) accumulates an average stall per gate; every stalled round is an
    // extra exposure to logical errors.
    let bench = BenchmarkCircuit::new("comparison", 1, setup.t_gates, setup.t_gates);
    let timeline = model.execution_time(&bench);
    let total_rounds = timeline.wall_clock_s / (setup.syndrome_cycle_ns * 1e-9);
    (total_rounds / setup.t_gates as f64).max(d_rounds)
}

/// The smallest code distance at which the decoder meets the target failure
/// probability for the whole algorithm, or `None` if no distance up to the
/// configured maximum suffices.
#[must_use]
pub fn required_code_distance(
    profile: &DecoderProfile,
    physical_error_rate: f64,
    setup: &ComparisonSetup,
) -> Option<usize> {
    if physical_error_rate >= profile.model.pth {
        return None;
    }
    let rounds_per_gate = effective_rounds_per_gate(profile, setup);
    let budget_per_round = setup.target_failure / (setup.t_gates as f64 * rounds_per_gate);
    let mut d = 3usize;
    while d <= setup.max_distance {
        let pl = profile.model.logical_error_rate(physical_error_rate, d);
        if pl <= budget_per_round {
            return Some(d);
        }
        d += 2;
    }
    None
}

/// One decoder's Figure 11 curve: `(p, required distance)` points, where
/// `None` means the decoder cannot reach the target at that error rate.
pub type DistanceCurve = Vec<(f64, Option<usize>)>;

/// Sweeps physical error rates for the whole Figure 11 panel.
///
/// Returns, for each decoder, the list of `(p, required distance)` points
/// (absent entries mean the decoder cannot reach the target at that rate).
#[must_use]
pub fn figure_11_sweep(
    physical_error_rates: &[f64],
    setup: &ComparisonSetup,
) -> Vec<(DecoderProfile, DistanceCurve)> {
    DecoderProfile::figure_11_panel()
        .into_iter()
        .map(|profile| {
            let points = physical_error_rates
                .iter()
                .map(|&p| (p, required_code_distance(&profile, p, setup)))
                .collect();
            (profile, points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_decoders_pay_no_backlog_penalty() {
        let setup = ComparisonSetup::default();
        let sfq = DecoderProfile::sfq(5);
        assert_eq!(effective_rounds_per_gate(&sfq, &setup), 1.0);
        let reference = DecoderProfile::mwpm_without_backlog();
        assert_eq!(effective_rounds_per_gate(&reference, &setup), 1.0);
    }

    #[test]
    fn slow_decoders_pay_a_huge_backlog_penalty() {
        let setup = ComparisonSetup::default();
        let nn = DecoderProfile::neural_network();
        let rounds = effective_rounds_per_gate(&nn, &setup);
        assert!(rounds > 1e3, "rounds per gate {rounds}");
        let uf = DecoderProfile::union_find();
        assert!(effective_rounds_per_gate(&uf, &setup) > 1e3);
    }

    #[test]
    fn sfq_needs_smaller_distance_than_backlogged_mwpm() {
        let setup = ComparisonSetup::default();
        let p = 1e-3;
        let sfq = required_code_distance(&DecoderProfile::sfq(5), p, &setup).unwrap();
        let mwpm = required_code_distance(&DecoderProfile::mwpm(), p, &setup).unwrap();
        let nn = required_code_distance(&DecoderProfile::neural_network(), p, &setup).unwrap();
        assert!(
            mwpm >= 2 * sfq,
            "backlogged MWPM distance {mwpm} should dwarf the SFQ distance {sfq}"
        );
        assert!(nn > sfq);
    }

    #[test]
    fn backlog_free_mwpm_beats_everything_at_low_error_rates() {
        let setup = ComparisonSetup::default();
        let p = 1e-4;
        let reference =
            required_code_distance(&DecoderProfile::mwpm_without_backlog(), p, &setup).unwrap();
        let sfq = required_code_distance(&DecoderProfile::sfq(5), p, &setup).unwrap();
        assert!(reference <= sfq);
    }

    #[test]
    fn required_distance_grows_toward_threshold() {
        let setup = ComparisonSetup::default();
        let profile = DecoderProfile::sfq(5);
        let low = required_code_distance(&profile, 1e-4, &setup).unwrap();
        let high = required_code_distance(&profile, 2e-2, &setup).unwrap();
        assert!(high > low);
        // Above the threshold no distance works.
        assert!(required_code_distance(&profile, 0.06, &setup).is_none());
    }

    #[test]
    fn sweep_covers_the_whole_panel() {
        let setup = ComparisonSetup::default();
        let sweep = figure_11_sweep(&[1e-4, 1e-3, 1e-2], &setup);
        assert_eq!(sweep.len(), 5);
        for (_, points) in &sweep {
            assert_eq!(points.len(), 3);
        }
    }
}
