//! System-level analysis for the NISQ+ reproduction.
//!
//! Beyond raw decoding accuracy, the paper's argument is a *system* argument:
//! a decoder slower than syndrome generation creates an exponentially growing
//! backlog (Section III), which inflates the effective code distance other
//! decoders need (Figure 11) and caps the computation a near-term machine can
//! perform; a fast online decoder avoids the backlog and expands the Simple
//! Quantum Volume by thousands of times (Figure 1).  This crate implements
//! those analyses:
//!
//! * [`backlog`] — the exponential-backlog execution-time model and a
//!   discrete-event queue simulation that validates it (Figures 5 and 6),
//! * [`benchmarks`] — the quantum benchmark circuits of Table I,
//! * [`sqv`] — Simple Quantum Volume accounting and the Figure 1 expansion
//!   factors,
//! * [`comparison`] — required code distance across decoders with and
//!   without backlog (Figure 11),
//! * [`refrigerator`] — cryogenic feasibility of the decoder mesh.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backlog;
pub mod benchmarks;
pub mod comparison;
pub mod refrigerator;
pub mod sqv;

pub use backlog::{
    BacklogComparison, BacklogModel, BacklogSimulation, ExecutionTimeline, MeasuredBacklog,
};
pub use benchmarks::{standard_benchmarks, BenchmarkCircuit};
pub use comparison::{required_code_distance, DecoderProfile};
pub use refrigerator::cooling_feasibility;
pub use sqv::{SqvAnalysis, SqvPoint};
