//! Cryogenic feasibility of the decoder mesh (Section VIII).
//!
//! The decoder sits inside the dilution refrigerator, above the quantum chip,
//! so its total area and power must fit the budget of the 4 K stage.  This
//! module combines the synthesized module characterisation from
//! `nisqplus-core` with the refrigerator budgets from `nisqplus-sfq` into a
//! single feasibility report.

use nisqplus_core::DecoderModuleHardware;
use nisqplus_sfq::report::{
    logical_qubits_supported, protected_distance, MeshReport, RefrigeratorBudget,
};
use serde::{Deserialize, Serialize};

/// Feasibility of hosting a decoder mesh in a refrigerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// The mesh protecting a single patch of the requested code distance.
    pub patch_mesh: MeshReport,
    /// Whether that mesh fits the budget.
    pub patch_fits: bool,
    /// The largest square mesh the budget can host.
    pub max_mesh_side: usize,
    /// The code distance a single logical qubit could use on that mesh.
    pub max_protected_distance: usize,
    /// How many distance-5 logical qubits that mesh could protect instead.
    pub logical_qubits_at_d5: usize,
}

/// Evaluates whether the decoder mesh for a distance-`d` patch fits a
/// refrigerator budget, and how far the budget could be pushed.
#[must_use]
pub fn cooling_feasibility(
    hardware: &DecoderModuleHardware,
    distance: usize,
    budget: &RefrigeratorBudget,
) -> FeasibilityReport {
    let patch_mesh = hardware.mesh_for_distance(distance);
    let max_side = hardware.max_mesh_side(budget);
    FeasibilityReport {
        patch_fits: patch_mesh.fits(budget),
        patch_mesh,
        max_mesh_side: max_side,
        max_protected_distance: protected_distance(max_side),
        logical_qubits_at_d5: logical_qubits_supported(max_side * max_side, 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_nine_patch_fits_a_typical_refrigerator() {
        let hw = DecoderModuleHardware::ersfq();
        let report = cooling_feasibility(&hw, 9, &RefrigeratorBudget::typical());
        assert_eq!(report.patch_mesh.modules, 289);
        assert!(report.patch_fits, "a d=9 patch must fit the 1 W budget");
    }

    #[test]
    fn budget_limits_scale_as_in_the_paper() {
        // Paper: a 1-2 W budget hosts a mesh of roughly 87x87 modules, which
        // protects one logical qubit of d ~ 44 or about 100 qubits at d = 5.
        let hw = DecoderModuleHardware::ersfq();
        let report = cooling_feasibility(&hw, 9, &RefrigeratorBudget::typical());
        assert!(
            (60..=130).contains(&report.max_mesh_side),
            "max mesh side {}",
            report.max_mesh_side
        );
        assert!(
            (30..=70).contains(&report.max_protected_distance),
            "protected distance {}",
            report.max_protected_distance
        );
        assert!(
            report.logical_qubits_at_d5 >= 40,
            "d=5 packing {}",
            report.logical_qubits_at_d5
        );
    }

    #[test]
    fn generous_budget_is_never_worse() {
        let hw = DecoderModuleHardware::ersfq();
        let typical = cooling_feasibility(&hw, 9, &RefrigeratorBudget::typical());
        let generous = cooling_feasibility(&hw, 9, &RefrigeratorBudget::generous());
        assert!(generous.max_mesh_side >= typical.max_mesh_side);
        assert!(generous.logical_qubits_at_d5 >= typical.logical_qubits_at_d5);
    }
}
