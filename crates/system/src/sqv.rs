//! Simple Quantum Volume accounting (Figure 1 and the Section VIII analysis).
//!
//! The paper defines the Simple Quantum Volume as the number of computational
//! qubits times the number of gates each can execute before an error is
//! expected.  A bare NISQ machine with physical error rate `p` can run about
//! `1/p` gates per qubit; encoding with the surface code and decoding online
//! pushes the per-gate error down to `PL ≈ c1 (p/pth)^(c2 d)`, multiplying
//! the achievable volume by thousands even after paying the qubit overhead of
//! the encoding.

use serde::{Deserialize, Serialize};

/// The logical-error-rate scaling model `PL = c1 (p/pth)^(c2 d)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// Prefactor `c1`.
    pub c1: f64,
    /// Accuracy threshold `pth`.
    pub pth: f64,
    /// Effective-distance factor `c2`.
    pub c2: f64,
}

impl ScalingModel {
    /// The ideal-decoder model of Fowler et al.: `PL ≈ 0.03 (p/pth)^(d/2)`.
    #[must_use]
    pub fn ideal_mwpm() -> Self {
        ScalingModel {
            c1: 0.03,
            pth: 0.103,
            c2: 0.5,
        }
    }

    /// The paper-calibrated model for the SFQ decoder at a given code
    /// distance, using the Table V `c2` values and the ≈5% accuracy
    /// threshold.  The prefactor is chosen so the d = 3 working point of
    /// Section VIII (`PL = 2.94e-9` at `p = 1e-5`) is reproduced.
    #[must_use]
    pub fn sfq_paper(distance: usize) -> Self {
        let c2 = match distance {
            3 => 0.650,
            5 => 0.429,
            7 => 0.306,
            _ => 0.323,
        };
        ScalingModel {
            c1: 0.048,
            pth: 0.05,
            c2,
        }
    }

    /// The logical error rate at physical error rate `p` and code distance `d`.
    #[must_use]
    pub fn logical_error_rate(&self, p: f64, distance: usize) -> f64 {
        (self.c1 * (p / self.pth).powf(self.c2 * distance as f64)).min(1.0)
    }
}

/// One machine configuration and its Simple Quantum Volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqvPoint {
    /// Human-readable label of the configuration.
    pub label: String,
    /// Number of computational (logical or physical) qubits exposed.
    pub qubits: usize,
    /// Expected number of gates each qubit can execute before failure.
    pub gates_per_qubit: f64,
    /// The Simple Quantum Volume: qubits × gates per qubit.
    pub sqv: f64,
}

/// The Figure 1 analysis: a physical machine versus AQEC-encoded machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SqvAnalysis {
    /// Number of faulty physical qubits available.
    pub physical_qubits: usize,
    /// Physical error rate per gate.
    pub physical_error_rate: f64,
    /// The paper's "NISQ target" reference volume (10^5).
    pub nisq_target_sqv: f64,
}

impl SqvAnalysis {
    /// The machine of Figure 1: about a thousand physical qubits at `p = 1e-5`.
    #[must_use]
    pub fn near_term_machine() -> Self {
        SqvAnalysis {
            physical_qubits: 1024,
            physical_error_rate: 1e-5,
            nisq_target_sqv: 1e5,
        }
    }

    /// Creates an analysis for an arbitrary machine.
    ///
    /// # Panics
    ///
    /// Panics if the error rate is not in `(0, 1]`.
    #[must_use]
    pub fn new(physical_qubits: usize, physical_error_rate: f64) -> Self {
        assert!(
            physical_error_rate > 0.0 && physical_error_rate <= 1.0,
            "physical error rate must be in (0, 1]"
        );
        SqvAnalysis {
            physical_qubits,
            physical_error_rate,
            nisq_target_sqv: 1e5,
        }
    }

    /// The unencoded machine: every physical qubit computes until it fails.
    #[must_use]
    pub fn physical_machine(&self) -> SqvPoint {
        let gates = 1.0 / self.physical_error_rate;
        SqvPoint {
            label: format!("{} physical qubits", self.physical_qubits),
            qubits: self.physical_qubits,
            gates_per_qubit: gates,
            sqv: self.physical_qubits as f64 * gates,
        }
    }

    /// An AQEC-encoded machine at code distance `d`.
    ///
    /// `qubits_per_logical` is the number of physical qubits consumed per
    /// logical qubit (the paper uses the data-qubit count `d^2 + (d-1)^2`);
    /// the volume follows the paper's convention of counting the total number
    /// of logical gates executable before the first expected logical error,
    /// `SQV = 1 / PL`.
    #[must_use]
    pub fn encoded_machine(
        &self,
        distance: usize,
        model: &ScalingModel,
        qubits_per_logical: usize,
    ) -> SqvPoint {
        let logical_qubits = self.physical_qubits / qubits_per_logical.max(1);
        let pl = model.logical_error_rate(self.physical_error_rate, distance);
        let sqv = if logical_qubits == 0 { 0.0 } else { 1.0 / pl };
        let gates_per_qubit = if logical_qubits == 0 {
            0.0
        } else {
            sqv / logical_qubits as f64
        };
        SqvPoint {
            label: format!("{logical_qubits} logical qubits at d={distance}"),
            qubits: logical_qubits,
            gates_per_qubit,
            sqv,
        }
    }

    /// The expansion factor of a configuration relative to the NISQ target.
    #[must_use]
    pub fn boost_factor(&self, point: &SqvPoint) -> f64 {
        point.sqv / self.nisq_target_sqv
    }
}

/// Physical qubits per logical qubit when only the data qubits of a planar
/// patch are counted, as the paper's packing argument does.
#[must_use]
pub fn data_qubits_per_logical(distance: usize) -> usize {
    distance * distance + (distance - 1) * (distance - 1)
}

/// Physical qubits per logical qubit for a full planar patch including
/// ancillas, `(2d - 1)^2`.
#[must_use]
pub fn full_patch_qubits_per_logical(distance: usize) -> usize {
    (2 * distance - 1) * (2 * distance - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_machine_matches_figure_one() {
        let analysis = SqvAnalysis::near_term_machine();
        let physical = analysis.physical_machine();
        assert_eq!(physical.qubits, 1024);
        assert!((physical.gates_per_qubit - 1e5).abs() < 1.0);
        assert!((physical.sqv - 1.024e8).abs() / 1.024e8 < 1e-9);
    }

    #[test]
    fn d3_working_point_matches_section_viii() {
        let analysis = SqvAnalysis::near_term_machine();
        let model = ScalingModel::sfq_paper(3);
        let pl = model.logical_error_rate(1e-5, 3);
        assert!(
            (pl - 2.94e-9).abs() / 2.94e-9 < 0.25,
            "PL at the d=3 working point is {pl:.3e}, paper quotes 2.94e-9"
        );
        let point = analysis.encoded_machine(3, &model, data_qubits_per_logical(3));
        assert_eq!(point.qubits, 78, "paper packs 78 logical qubits at d=3");
        let boost = analysis.boost_factor(&point);
        assert!(
            (2000.0..6000.0).contains(&boost),
            "d=3 SQV boost {boost:.0} should be in the thousands (paper: 3402)"
        );
    }

    #[test]
    fn d5_boost_exceeds_d3_boost() {
        let analysis = SqvAnalysis::near_term_machine();
        let d3 =
            analysis.encoded_machine(3, &ScalingModel::sfq_paper(3), data_qubits_per_logical(3));
        let d5 =
            analysis.encoded_machine(5, &ScalingModel::sfq_paper(5), data_qubits_per_logical(5));
        assert!(
            d5.sqv > d3.sqv,
            "moving to d=5 must increase the volume further (paper: 3402 -> 11163)"
        );
        assert!(analysis.boost_factor(&d5) > 5000.0);
    }

    #[test]
    fn scaling_model_is_monotone_in_distance_below_threshold() {
        let model = ScalingModel::ideal_mwpm();
        let p = 1e-3;
        assert!(model.logical_error_rate(p, 5) < model.logical_error_rate(p, 3));
        assert!(model.logical_error_rate(p, 7) < model.logical_error_rate(p, 5));
        // Above threshold increasing the distance no longer helps, and the
        // rate saturates at 1 once the exponent grows.
        assert!(model.logical_error_rate(0.5, 5) >= model.logical_error_rate(0.5, 3));
        assert_eq!(model.logical_error_rate(0.5, 21), 1.0);
    }

    #[test]
    fn qubit_packing_helpers() {
        assert_eq!(data_qubits_per_logical(3), 13);
        assert_eq!(data_qubits_per_logical(5), 41);
        assert_eq!(full_patch_qubits_per_logical(3), 25);
        assert_eq!(full_patch_qubits_per_logical(9), 289);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_error_rate_panics() {
        let _ = SqvAnalysis::new(100, 0.0);
    }

    #[test]
    fn zero_logical_qubits_gives_zero_volume() {
        let analysis = SqvAnalysis::new(10, 1e-4);
        let point = analysis.encoded_machine(9, &ScalingModel::sfq_paper(9), 289);
        assert_eq!(point.qubits, 0);
        assert_eq!(point.sqv, 0.0);
    }
}
