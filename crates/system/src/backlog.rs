//! The decoding-backlog execution-time model (Section III, Figures 5 and 6).
//!
//! If the decoder processes syndrome data slower than the machine generates
//! it (`f = r_gen / r_proc > 1`), every T gate must wait for the accumulated
//! backlog, and the data generated *while waiting* (error correction never
//! stops, even when the logical computation is stalled) compounds: the stall
//! before the k-th T gate grows like `f^k`.  Two models are provided:
//!
//! * [`BacklogModel`] — the closed-form recurrence from the paper's proof
//!   sketch (`R_i = f R_{i-1} + (f - 1) g_i`),
//! * [`BacklogSimulation`] — a discrete-event simulation of the syndrome
//!   queue that walks the actual gate schedule of a benchmark.
//!
//! Both agree (see the cross-validation tests), which is the point of
//! Figure 5/6: the blow-up is intrinsic to any decoder with `f > 1`.

use crate::benchmarks::{BenchmarkCircuit, LogicalGate};
use serde::{Deserialize, Serialize};

/// The wall-clock decomposition of one benchmark execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTimeline {
    /// The decoding ratio `f = r_gen / r_proc`.
    pub ratio: f64,
    /// Pure compute time (no stalls), in seconds.
    pub compute_s: f64,
    /// Total time spent stalled at T gates waiting for the decoder, in seconds.
    pub stall_s: f64,
    /// Total wall-clock time, in seconds.
    pub wall_clock_s: f64,
}

impl ExecutionTimeline {
    /// The slowdown factor relative to a backlog-free execution.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.compute_s == 0.0 {
            1.0
        } else {
            self.wall_clock_s / self.compute_s
        }
    }
}

/// Closed-form backlog model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklogModel {
    /// Syndrome-generation cycle time in nanoseconds (the paper assumes
    /// 400 ns for superconducting devices).
    pub syndrome_cycle_ns: f64,
    /// Decoder time per syndrome-generation cycle's worth of data, in
    /// nanoseconds.
    pub decode_time_ns: f64,
}

impl BacklogModel {
    /// The syndrome cycle the paper assumes (400 ns).
    pub const DEFAULT_SYNDROME_CYCLE_NS: f64 = 400.0;

    /// Creates a model from the syndrome cycle and decoder latency.
    ///
    /// # Panics
    ///
    /// Panics if either time is not positive.
    #[must_use]
    pub fn new(syndrome_cycle_ns: f64, decode_time_ns: f64) -> Self {
        assert!(
            syndrome_cycle_ns > 0.0 && decode_time_ns > 0.0,
            "times must be positive"
        );
        BacklogModel {
            syndrome_cycle_ns,
            decode_time_ns,
        }
    }

    /// Creates a model directly from the decoding ratio `f`.
    #[must_use]
    pub fn from_ratio(ratio: f64) -> Self {
        BacklogModel::new(
            Self::DEFAULT_SYNDROME_CYCLE_NS,
            Self::DEFAULT_SYNDROME_CYCLE_NS * ratio,
        )
    }

    /// The decoding ratio `f = r_gen / r_proc` (equivalently decode time over
    /// generation time).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.decode_time_ns / self.syndrome_cycle_ns
    }

    /// Evaluates the closed-form model on a benchmark, assuming one syndrome
    /// cycle per logical gate and T gates spread evenly.
    #[must_use]
    pub fn execution_time(&self, benchmark: &BenchmarkCircuit) -> ExecutionTimeline {
        let f = self.ratio();
        let cycle_s = self.syndrome_cycle_ns * 1e-9;
        let total = benchmark.total_gates() as f64;
        let k = benchmark.t_gates() as f64;
        let compute_s = total * cycle_s;
        if f <= 1.0 || k == 0.0 {
            return ExecutionTimeline {
                ratio: f,
                compute_s,
                stall_s: 0.0,
                wall_clock_s: compute_s,
            };
        }
        // Gap (in cycles) between consecutive T gates.
        let gap = total / k;
        // R_i = f * R_{i-1} + (f - 1) * gap; sum the stalls over all k T gates.
        let mut stall_cycles = 0.0f64;
        let mut r = 0.0f64;
        for _ in 0..benchmark.t_gates() {
            r = f * r + (f - 1.0) * gap;
            stall_cycles += r;
            if !stall_cycles.is_finite() {
                break;
            }
        }
        let stall_s = stall_cycles * cycle_s;
        ExecutionTimeline {
            ratio: f,
            compute_s,
            stall_s,
            wall_clock_s: compute_s + stall_s,
        }
    }

    /// The steady-state backlog growth in *rounds of undecoded syndrome data
    /// per generated round* for a gate-free stream (no T-gate stalls).
    ///
    /// Each generation cycle adds one round of data and the decoder retires
    /// `1/f` rounds, so the queue grows by `1 - 1/f` rounds per cycle when
    /// `f > 1` and is stable (growth 0) otherwise.  This is the slope the
    /// streaming runtime measures empirically; see
    /// [`BacklogComparison::against_model`].
    #[must_use]
    pub fn steady_state_growth_per_round(&self) -> f64 {
        let f = self.ratio();
        if f <= 1.0 {
            0.0
        } else {
            1.0 - 1.0 / f
        }
    }

    /// The asymptotic backlog growth per T gate: the last stall is roughly
    /// `f^k` cycles.
    #[must_use]
    pub fn final_stall_cycles(&self, benchmark: &BenchmarkCircuit) -> f64 {
        let f = self.ratio();
        if f <= 1.0 {
            return 0.0;
        }
        let gap = benchmark.total_gates() as f64 / benchmark.t_gates().max(1) as f64;
        let mut r = 0.0f64;
        for _ in 0..benchmark.t_gates() {
            r = f * r + (f - 1.0) * gap;
            if !r.is_finite() {
                break;
            }
        }
        r
    }
}

/// Discrete-event simulation of the syndrome queue over a gate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklogSimulation {
    model: BacklogModel,
}

impl BacklogSimulation {
    /// Creates a simulation using the given backlog model parameters.
    #[must_use]
    pub fn new(model: BacklogModel) -> Self {
        BacklogSimulation { model }
    }

    /// Walks the benchmark's gate schedule cycle by cycle.
    ///
    /// Every gate occupies one syndrome cycle; syndrome data accumulates in a
    /// queue that the decoder drains at rate `1/f`; a T gate cannot execute
    /// until all data generated *before* it has been decoded, and the
    /// machine keeps generating syndrome data while it waits.
    #[must_use]
    pub fn run(&self, benchmark: &BenchmarkCircuit) -> ExecutionTimeline {
        let f = self.model.ratio();
        let cycle_s = self.model.syndrome_cycle_ns * 1e-9;
        let sequence = benchmark.gate_sequence();
        let compute_s = sequence.len() as f64 * cycle_s;
        if f <= 1.0 {
            return ExecutionTimeline {
                ratio: f,
                compute_s,
                stall_s: 0.0,
                wall_clock_s: compute_s,
            };
        }

        // Backlog measured in cycles-worth of undecoded syndrome data.
        let mut backlog = 0.0f64;
        let mut stall_cycles = 0.0f64;
        for gate in sequence {
            if gate == LogicalGate::T {
                // Wait until the backlog accumulated so far is decoded; while
                // waiting, new data is generated and joins the *next* backlog.
                let wait = backlog * f;
                stall_cycles += wait;
                backlog = wait; // data generated during the wait
                if !stall_cycles.is_finite() {
                    break;
                }
            }
            // One cycle of computation: one unit generated, 1/f units decoded.
            backlog += 1.0 - 1.0 / f;
        }
        let stall_s = stall_cycles * cycle_s;
        ExecutionTimeline {
            ratio: f,
            compute_s,
            stall_s,
            wall_clock_s: compute_s + stall_s,
        }
    }
}

/// An empirically measured backlog trajectory, as produced by the streaming
/// runtime (`nisqplus-runtime`): how many rounds of syndrome data were
/// generated, and how many were still undecoded when generation stopped.
///
/// The streaming runtime produces one of these per run *and* one per
/// lattice in a multi-lattice run.  A per-lattice measurement divides the
/// lattice's own service time by the full worker-pool width, which assumes
/// the pool is entirely available to that lattice — an optimistic capacity
/// bound when several lattices compete for the same workers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredBacklog {
    /// Rounds of syndrome data generated.
    pub rounds: u64,
    /// Rounds still undecoded at the end of generation.
    pub final_backlog: u64,
    /// Rounds *shed* (dropped by a load-shedding push policy) during
    /// generation.  Shed rounds are lost, not owed: they never enter the
    /// backlog, so `final_backlog` alone understates how far the decoder
    /// fell behind.  The reconciliation is
    /// `rounds = decoded + final_backlog + shed` at the instant generation
    /// stops; [`MeasuredBacklog::unserved_per_round`] restores the shed
    /// rounds to the growth accounting.
    pub shed: u64,
    /// Mean decode service time per round, in nanoseconds, *divided by the
    /// number of parallel workers* (i.e. the aggregate service time).
    pub service_time_ns: f64,
    /// Mean inter-arrival time between generated rounds, in nanoseconds.
    pub inter_arrival_ns: f64,
}

impl MeasuredBacklog {
    /// The measured backlog growth in rounds per generated round.
    ///
    /// Shed rounds do **not** count here (they are not owed work); under a
    /// load-shedding policy compare with
    /// [`MeasuredBacklog::unserved_per_round`], which does count them.
    #[must_use]
    pub fn growth_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.final_backlog as f64 / self.rounds as f64
        }
    }

    /// The fraction of generated rounds that were shed.
    #[must_use]
    pub fn shed_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.shed as f64 / self.rounds as f64
        }
    }

    /// Rounds the decoder failed to serve per generated round: backlog still
    /// owed *plus* rounds shed.  Under backpressure (`shed == 0`) this equals
    /// [`MeasuredBacklog::growth_per_round`]; under load shedding it is the
    /// honest overload measure that the queue-only view hides.
    #[must_use]
    pub fn unserved_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.final_backlog + self.shed) as f64 / self.rounds as f64
        }
    }

    /// The effective decoding ratio `f` implied by the measured service and
    /// arrival rates.
    #[must_use]
    pub fn effective_ratio(&self) -> f64 {
        if self.inter_arrival_ns <= 0.0 {
            0.0
        } else {
            self.service_time_ns / self.inter_arrival_ns
        }
    }

    /// The [`BacklogModel`] parameterized by the *measured* rates — the
    /// apples-to-apples model for this run.
    ///
    /// # Panics
    ///
    /// Panics if either measured time is not positive.
    #[must_use]
    pub fn effective_model(&self) -> BacklogModel {
        BacklogModel::new(self.inter_arrival_ns, self.service_time_ns)
    }
}

/// Measured-versus-modeled backlog growth: the empirical validation of
/// Figures 5 and 6 that the streaming runtime produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklogComparison {
    /// Growth per round predicted by the model under the measured rates.
    pub predicted_growth_per_round: f64,
    /// Growth per round actually observed.
    pub measured_growth_per_round: f64,
    /// The effective decoding ratio `f` of the run.
    pub effective_ratio: f64,
}

impl BacklogComparison {
    /// Compares a measured trajectory against the closed-form model driven by
    /// the same (measured) generation and service rates.
    #[must_use]
    pub fn against_model(measured: &MeasuredBacklog) -> Self {
        let predicted = if measured.inter_arrival_ns > 0.0 && measured.service_time_ns > 0.0 {
            measured.effective_model().steady_state_growth_per_round()
        } else {
            0.0
        };
        BacklogComparison {
            predicted_growth_per_round: predicted,
            measured_growth_per_round: measured.growth_per_round(),
            effective_ratio: measured.effective_ratio(),
        }
    }

    /// The multiplicative disagreement between measurement and model
    /// (`>= 1`; `1.0` is perfect agreement).  When both growths are
    /// effectively zero (a stable queue, `f <= 1`) the agreement is perfect
    /// by convention; when exactly one is zero the factor is infinite.
    #[must_use]
    pub fn agreement_factor(&self) -> f64 {
        let (a, b) = (
            self.measured_growth_per_round,
            self.predicted_growth_per_round,
        );
        // Backlogs below one round per thousand generated are noise: both
        // sides call the queue stable.
        const STABLE: f64 = 1e-3;
        if a < STABLE && b < STABLE {
            return 1.0;
        }
        if a <= 0.0 || b <= 0.0 {
            return f64::INFINITY;
        }
        (a / b).max(b / a)
    }

    /// Whether the measurement validates the model to within `factor`x.
    #[must_use]
    pub fn within(&self, factor: f64) -> bool {
        self.agreement_factor() <= factor
    }
}

/// Sweeps the decoding ratio and reports the wall-clock time of a benchmark
/// at each point (the data behind Figure 6).
#[must_use]
pub fn runtime_vs_ratio(
    benchmark: &BenchmarkCircuit,
    ratios: &[f64],
    syndrome_cycle_ns: f64,
) -> Vec<(f64, ExecutionTimeline)> {
    ratios
        .iter()
        .map(|&r| {
            let model = BacklogModel::new(syndrome_cycle_ns, syndrome_cycle_ns * r.max(1e-6));
            (r, model.execution_time(benchmark))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_decoders_add_no_stall() {
        let model = BacklogModel::from_ratio(0.5);
        let timeline = model.execution_time(&BenchmarkCircuit::cuccaro_adder());
        assert_eq!(timeline.stall_s, 0.0);
        assert!((timeline.slowdown() - 1.0).abs() < 1e-12);
        let sim = BacklogSimulation::new(model).run(&BenchmarkCircuit::cuccaro_adder());
        assert_eq!(sim.stall_s, 0.0);
    }

    #[test]
    fn slow_decoders_blow_up_exponentially() {
        let model = BacklogModel::from_ratio(1.5);
        let small = model.execution_time(&BenchmarkCircuit::cnx_log_depth());
        let large = model.execution_time(&BenchmarkCircuit::barenco_half_dirty_toffoli());
        // More T gates -> astronomically more stall time.
        assert!(large.wall_clock_s > small.wall_clock_s);
        assert!(small.slowdown() > 1e3, "slowdown {}", small.slowdown());
    }

    #[test]
    fn section_three_example_is_astronomical() {
        // The paper: ratio 2 on the 686-T-gate example gives ~1e196 seconds.
        let model = BacklogModel::from_ratio(2.0);
        let timeline = model.execution_time(&BenchmarkCircuit::multiply_controlled_not_100());
        assert!(
            timeline.wall_clock_s > 1e150,
            "wall clock {} should be astronomically large",
            timeline.wall_clock_s
        );
    }

    #[test]
    fn ratio_is_decode_over_generation() {
        let model = BacklogModel::new(400.0, 800.0);
        assert!((model.ratio() - 2.0).abs() < 1e-12);
        let model = BacklogModel::new(400.0, 20.0);
        assert!(model.ratio() < 1.0);
    }

    #[test]
    fn model_and_simulation_agree_to_leading_order() {
        let model = BacklogModel::from_ratio(1.2);
        let bench = BenchmarkCircuit::cnx_log_depth();
        let analytic = model.execution_time(&bench);
        let simulated = BacklogSimulation::new(model).run(&bench);
        // Both blow up by the same exponential order of magnitude.
        let log_a = analytic.wall_clock_s.log10();
        let log_s = simulated.wall_clock_s.log10();
        assert!(
            (log_a - log_s).abs() < 2.0,
            "analytic 1e{log_a:.1} vs simulated 1e{log_s:.1}"
        );
    }

    #[test]
    fn final_stall_grows_with_t_count() {
        let model = BacklogModel::from_ratio(1.1);
        let few = model.final_stall_cycles(&BenchmarkCircuit::cnx_log_depth());
        let many = model.final_stall_cycles(&BenchmarkCircuit::barenco_half_dirty_toffoli());
        assert!(many > few);
        assert_eq!(
            BacklogModel::from_ratio(0.9).final_stall_cycles(&BenchmarkCircuit::cnx_log_depth()),
            0.0
        );
    }

    #[test]
    fn runtime_sweep_is_monotone_in_ratio() {
        let bench = BenchmarkCircuit::takahashi_adder();
        let sweep = runtime_vs_ratio(&bench, &[0.25, 0.5, 1.0, 1.25, 1.5], 400.0);
        assert_eq!(sweep.len(), 5);
        for pair in sweep.windows(2) {
            assert!(pair[1].1.wall_clock_s >= pair[0].1.wall_clock_s);
        }
        // Below ratio 1 everything is identical to pure compute time.
        assert!((sweep[0].1.wall_clock_s - sweep[2].1.wall_clock_s).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_model_panics() {
        let _ = BacklogModel::new(0.0, 10.0);
    }

    #[test]
    fn steady_state_growth_matches_ratio() {
        assert_eq!(
            BacklogModel::from_ratio(0.5).steady_state_growth_per_round(),
            0.0
        );
        assert_eq!(
            BacklogModel::from_ratio(1.0).steady_state_growth_per_round(),
            0.0
        );
        let growth = BacklogModel::from_ratio(2.0).steady_state_growth_per_round();
        assert!((growth - 0.5).abs() < 1e-12);
        let growth = BacklogModel::from_ratio(1.25).steady_state_growth_per_round();
        assert!((growth - 0.2).abs() < 1e-12);
    }

    #[test]
    fn measured_backlog_growth_and_ratio() {
        let measured = MeasuredBacklog {
            rounds: 10_000,
            final_backlog: 5_000,
            shed: 0,
            service_time_ns: 800.0,
            inter_arrival_ns: 400.0,
        };
        assert!((measured.growth_per_round() - 0.5).abs() < 1e-12);
        assert!((measured.effective_ratio() - 2.0).abs() < 1e-12);
        assert!((measured.effective_model().ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_of_consistent_measurement_agrees() {
        // f = 2 -> the model predicts growth 0.5/round; a measurement showing
        // 0.45/round agrees to within 1.2x.
        let measured = MeasuredBacklog {
            rounds: 10_000,
            final_backlog: 4_500,
            shed: 0,
            service_time_ns: 800.0,
            inter_arrival_ns: 400.0,
        };
        let cmp = BacklogComparison::against_model(&measured);
        assert!((cmp.predicted_growth_per_round - 0.5).abs() < 1e-12);
        assert!((cmp.measured_growth_per_round - 0.45).abs() < 1e-12);
        assert!(cmp.within(1.2));
        assert!(!cmp.within(1.05));
        assert!((cmp.agreement_factor() - 0.5 / 0.45).abs() < 1e-9);
    }

    #[test]
    fn stable_queues_agree_trivially() {
        // A fast decoder: f < 1, no growth on either side.
        let measured = MeasuredBacklog {
            rounds: 10_000,
            final_backlog: 3,
            shed: 0,
            service_time_ns: 100.0,
            inter_arrival_ns: 400.0,
        };
        let cmp = BacklogComparison::against_model(&measured);
        assert_eq!(cmp.predicted_growth_per_round, 0.0);
        assert_eq!(cmp.agreement_factor(), 1.0);
        assert!(cmp.within(2.0));
    }

    #[test]
    fn one_sided_growth_never_agrees() {
        // The model says stable but the measurement grew substantially.
        let measured = MeasuredBacklog {
            rounds: 1_000,
            final_backlog: 400,
            shed: 0,
            service_time_ns: 100.0,
            inter_arrival_ns: 400.0,
        };
        let cmp = BacklogComparison::against_model(&measured);
        assert_eq!(cmp.agreement_factor(), f64::INFINITY);
        assert!(!cmp.within(1e6));
    }

    #[test]
    fn empty_measurement_is_degenerate_but_finite() {
        let measured = MeasuredBacklog {
            rounds: 0,
            final_backlog: 0,
            shed: 0,
            service_time_ns: 0.0,
            inter_arrival_ns: 0.0,
        };
        assert_eq!(measured.growth_per_round(), 0.0);
        assert_eq!(measured.effective_ratio(), 0.0);
        let cmp = BacklogComparison::against_model(&measured);
        assert_eq!(cmp.agreement_factor(), 1.0);
    }
}
