//! The Monte-Carlo lifetime simulation loop.
//!
//! Each trial simulates one error-correction cycle in the code-capacity
//! setting the paper uses for its accuracy results: sample a fresh error from
//! the channel, extract the (perfect) syndrome, decode one sector, apply the
//! correction and classify the residual.  Trials are independent, seeded
//! deterministically, and distributed over worker threads.

use crate::stats::wilson_interval;
use nisqplus_core::{DecodeStats, DecoderVariant, SfqMeshDecoder};
use nisqplus_decoders::Decoder;
use nisqplus_qec::error_model::ErrorModel;
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::classify_residual;
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent trials (error-correction cycles).
    pub trials: usize,
    /// Base RNG seed; every worker derives its own stream from it.
    pub seed: u64,
    /// The stabilizer sector to decode.
    pub sector: Sector,
    /// Number of worker threads (`None` = use all available cores).
    pub threads: Option<usize>,
}

impl MonteCarloConfig {
    /// A configuration with the given number of trials and defaults otherwise.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        MonteCarloConfig {
            trials,
            seed: 0x5158_u64,
            sector: Sector::X,
            threads: None,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sector to decode.
    #[must_use]
    pub fn with_sector(mut self, sector: Sector) -> Self {
        self.sector = sector;
        self
    }

    /// Sets an explicit worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Aggregated result of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// Trials simulated.
    pub trials: usize,
    /// Trials that ended in a logical error or an invalid correction.
    pub failures: usize,
    /// Total detection events observed across all trials.
    pub total_defects: usize,
    /// Per-trial decoder cycle counts, when the decoder reports them.
    pub cycle_samples: Vec<usize>,
    /// Per-trial decode times in nanoseconds, when the decoder reports them.
    pub time_ns_samples: Vec<f64>,
}

impl MonteCarloResult {
    /// The logical error rate `PL` (failures / trials).
    #[must_use]
    pub fn logical_error_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// A 95% Wilson confidence interval on the logical error rate.
    #[must_use]
    pub fn confidence_interval(&self) -> (f64, f64) {
        wilson_interval(self.failures, self.trials)
    }

    /// The average number of detection events per trial.
    #[must_use]
    pub fn mean_defects(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.total_defects as f64 / self.trials as f64
        }
    }
}

/// Runs a lifetime simulation with an arbitrary decoder.
///
/// `make_decoder` constructs one decoder per worker thread; `read_stats`
/// extracts per-decode statistics from the decoder after each trial (return
/// `None` for decoders that do not report any).
pub fn run_lifetime<M, D, F, S>(
    lattice: &Lattice,
    model: &M,
    config: &MonteCarloConfig,
    make_decoder: F,
    read_stats: S,
) -> MonteCarloResult
where
    M: ErrorModel + Sync,
    D: Decoder,
    F: Fn() -> D + Sync,
    S: Fn(&D) -> Option<DecodeStats> + Sync,
{
    let threads = config
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
        .min(config.trials.max(1));
    struct WorkerResult {
        failures: usize,
        defects: usize,
        cycles: Vec<usize>,
        times: Vec<f64>,
    }
    let results: Mutex<Vec<WorkerResult>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let results = &results;
            let make_decoder = &make_decoder;
            let read_stats = &read_stats;
            let trials = config.trials / threads + usize::from(worker < config.trials % threads);
            let seed = config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64 + 1));
            let sector = config.sector;
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut decoder = make_decoder();
                let mut failures = 0usize;
                let mut defects = 0usize;
                let mut cycles = Vec::new();
                let mut times = Vec::new();
                for _ in 0..trials {
                    let error = model.sample(lattice, &mut rng);
                    let syndrome = lattice.syndrome_of(&error);
                    defects += lattice.defects(&syndrome, sector).len();
                    let correction = decoder.decode(lattice, &syndrome, sector);
                    let state =
                        classify_residual(lattice, &error, correction.pauli_string(), sector);
                    if state.is_failure() {
                        failures += 1;
                    }
                    if let Some(stats) = read_stats(&decoder) {
                        cycles.push(stats.cycles);
                        times.push(stats.time_ns);
                    }
                }
                results.lock().push(WorkerResult {
                    failures,
                    defects,
                    cycles,
                    times,
                });
            });
        }
    });

    let mut out = MonteCarloResult {
        trials: config.trials,
        failures: 0,
        total_defects: 0,
        cycle_samples: Vec::new(),
        time_ns_samples: Vec::new(),
    };
    for worker in results.into_inner() {
        out.failures += worker.failures;
        out.total_defects += worker.defects;
        out.cycle_samples.extend(worker.cycles);
        out.time_ns_samples.extend(worker.times);
    }
    out
}

/// Convenience wrapper: runs a lifetime simulation of the SFQ mesh decoder in
/// a given design variant, collecting cycle and timing statistics.
pub fn run_sfq_lifetime<M>(
    lattice: &Lattice,
    model: &M,
    config: &MonteCarloConfig,
    variant: DecoderVariant,
) -> MonteCarloResult
where
    M: ErrorModel + Sync,
{
    run_lifetime(
        lattice,
        model,
        config,
        || SfqMeshDecoder::new(variant),
        SfqMeshDecoder::last_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_decoders::ExactMatchingDecoder;
    use nisqplus_qec::error_model::PureDephasing;

    #[test]
    fn zero_error_rate_never_fails() {
        let lattice = Lattice::new(3).unwrap();
        let model = PureDephasing::new(0.0).unwrap();
        let config = MonteCarloConfig::new(200).with_threads(2);
        let result = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        assert_eq!(result.trials, 200);
        assert_eq!(result.failures, 0);
        assert_eq!(result.logical_error_rate(), 0.0);
        assert_eq!(result.total_defects, 0);
        assert_eq!(result.cycle_samples.len(), 200);
    }

    #[test]
    fn certain_error_rate_mostly_fails() {
        let lattice = Lattice::new(3).unwrap();
        let model = PureDephasing::new(0.5).unwrap();
        let config = MonteCarloConfig::new(200).with_threads(2).with_seed(7);
        let result = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        assert!(
            result.logical_error_rate() > 0.2,
            "rate {}",
            result.logical_error_rate()
        );
        assert!(result.mean_defects() > 1.0);
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let lattice = Lattice::new(5).unwrap();
        let model = PureDephasing::new(0.06).unwrap();
        let config = MonteCarloConfig::new(300).with_threads(3).with_seed(42);
        let a = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        let b = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.total_defects, b.total_defects);
    }

    #[test]
    fn works_with_software_decoders_too() {
        let lattice = Lattice::new(3).unwrap();
        let model = PureDephasing::new(0.05).unwrap();
        let config = MonteCarloConfig::new(100).with_threads(2);
        let result = run_lifetime(&lattice, &model, &config, ExactMatchingDecoder::new, |_| {
            None
        });
        assert_eq!(result.trials, 100);
        assert!(result.cycle_samples.is_empty());
        assert!(result.logical_error_rate() < 0.2);
    }

    #[test]
    fn confidence_interval_brackets_the_estimate() {
        let result = MonteCarloResult {
            trials: 1000,
            failures: 100,
            total_defects: 0,
            cycle_samples: vec![],
            time_ns_samples: vec![],
        };
        let (lo, hi) = result.confidence_interval();
        assert!(lo < 0.1 && 0.1 < hi);
        assert!(lo > 0.07 && hi < 0.14);
    }

    #[test]
    fn final_design_beats_baseline_at_low_p() {
        let lattice = Lattice::new(5).unwrap();
        let model = PureDephasing::new(0.03).unwrap();
        let config = MonteCarloConfig::new(400).with_threads(4).with_seed(3);
        let final_run = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        let baseline = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Baseline);
        assert!(
            final_run.logical_error_rate() < baseline.logical_error_rate(),
            "final {} vs baseline {}",
            final_run.logical_error_rate(),
            baseline.logical_error_rate()
        );
    }
}
