//! Summary statistics, histograms and confidence intervals.

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form, as the paper reports).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample; returns an all-zero summary for an
    /// empty sample.
    ///
    /// Non-finite samples (NaN, ±∞) are ignored — they are measurement
    /// artifacts, and a single one would otherwise poison every statistic
    /// (`NaN` propagates through sums and comparisons).  `count` reflects
    /// only the samples actually summarized, so a sample set that is
    /// entirely non-finite yields the same all-zero summary as an empty
    /// one.  Every field of the result is finite by construction.
    #[must_use]
    pub fn of(samples: &[f64]) -> Summary {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in samples {
            if !s.is_finite() {
                continue;
            }
            count += 1;
            sum += s;
            min = min.min(s);
            max = max.max(s);
        }
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = sum / count as f64;
        let variance = samples
            .iter()
            .filter(|s| s.is_finite())
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / count as f64;
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min,
            max,
        }
    }

    /// Computes the summary of an integer-valued sample.
    #[must_use]
    pub fn of_counts(samples: &[usize]) -> Summary {
        let as_f64: Vec<f64> = samples.iter().map(|&c| c as f64).collect();
        Summary::of(&as_f64)
    }
}

/// A fixed-width histogram over `[0, max)` with `bins` bins.
///
/// Returns `(bin_edges, densities)` where densities are normalised so they
/// sum to 1 (an estimated probability mass per bin), matching the truncated
/// probability-density plots of Figure 10(c).
#[must_use]
pub fn histogram(samples: &[f64], bins: usize, max: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(max > 0.0, "histogram range must be positive");
    let width = max / bins as f64;
    let edges: Vec<f64> = (0..=bins).map(|i| i as f64 * width).collect();
    let mut counts = vec![0usize; bins];
    let mut total = 0usize;
    for &s in samples {
        if s >= 0.0 && s < max {
            let bin = ((s / width) as usize).min(bins - 1);
            counts[bin] += 1;
            total += 1;
        }
    }
    let densities = counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect();
    (edges, densities)
}

/// The `q`-quantile (`0.0..=1.0`) of an ascending-sorted sample, by linear
/// interpolation between the two nearest order statistics (the convention
/// numpy calls "linear", R calls type 7).  Returns 0.0 for an empty sample,
/// so the result is always finite on finite input.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let h = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            sorted[lo] + (sorted[hi] - sorted[lo]) * (h - lo as f64)
        }
    }
}

/// The 95% Wilson score interval for a binomial proportion.
#[must_use]
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96_f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_ignores_non_finite_samples() {
        let s = Summary::of(&[f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.std_dev.is_finite());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // An entirely non-finite sample set degrades to the empty summary.
        let s = Summary::of(&[f64::NAN, f64::NAN]);
        assert_eq!(s.count, 0);
        assert_eq!(s, Summary::of(&[]));
    }

    #[test]
    fn quantile_sorted_interpolates_between_order_statistics() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 40.0);
        assert!((quantile_sorted(&sorted, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
        assert_eq!(quantile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn summary_of_counts_matches_float_version() {
        let a = Summary::of_counts(&[2, 4, 6]);
        let b = Summary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_densities_sum_to_one() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let (edges, dens) = histogram(&samples, 5, 10.0);
        assert_eq!(edges.len(), 6);
        assert_eq!(dens.len(), 5);
        let sum: f64 = dens.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Uniform data -> roughly uniform bins.
        for &d in &dens {
            assert!((d - 0.2).abs() < 0.05);
        }
    }

    #[test]
    fn histogram_ignores_out_of_range_samples() {
        let (_, dens) = histogram(&[1.0, 2.0, 100.0, -5.0], 2, 10.0);
        let sum: f64 = dens.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0, 10.0);
    }

    #[test]
    fn wilson_interval_behaviour() {
        let (lo, hi) = wilson_interval(0, 100);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100);
        assert!(lo > 0.95);
        assert!(hi > 0.999);
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
    }
}
