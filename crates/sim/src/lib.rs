//! Monte-Carlo lifetime simulation, threshold estimation and statistics.
//!
//! The paper benchmarks its decoder with "lifetime simulation, or simply
//! Monte Carlo benchmarking" (Section VII): stochastically inject errors,
//! extract the syndrome, decode, apply the correction, and check for logical
//! errors; the ratio of logical errors to simulated cycles is the logical
//! error rate `PL`.  This crate provides that harness plus the downstream
//! analysis the evaluation section relies on:
//!
//! * [`monte_carlo`] — the (parallel, seeded) lifetime simulation loop,
//! * [`threshold`] — logical-error-rate curves over `(p, d)` grids,
//!   pseudo-thresholds and the accuracy threshold (Figure 10 a/b),
//! * [`fit`] — fitting `PL ≈ c1 (p/pth)^(c2 d)` to extract the effective
//!   code-distance factor `c2` (Table V),
//! * [`stats`] — summary statistics, histograms and confidence intervals,
//! * [`timing`] — converting decoder cycles into nanoseconds (Table IV and
//!   Figure 10 c).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fit;
pub mod monte_carlo;
pub mod stats;
pub mod threshold;
pub mod timing;

pub use fit::{fit_scaling_exponent, ScalingFit};
pub use monte_carlo::{run_lifetime, run_sfq_lifetime, MonteCarloConfig, MonteCarloResult};
pub use stats::{histogram, wilson_interval, Summary};
pub use threshold::{accuracy_threshold, pseudo_threshold, ErrorRateCurve, ErrorRatePoint};
pub use timing::{CycleTimeConverter, ExecutionTimeRow};
