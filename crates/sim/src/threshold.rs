//! Logical-error-rate curves, pseudo-thresholds and the accuracy threshold.
//!
//! The paper evaluates its decoder with two metrics (Section VII):
//!
//! * the **accuracy threshold** — the physical error rate below which
//!   increasing the code distance decreases the logical error rate (the
//!   curves for different `d` cross there), and
//! * the **pseudo-threshold** of each distance — the physical error rate at
//!   which `PL = p` for that particular lattice.

use crate::monte_carlo::{run_sfq_lifetime, MonteCarloConfig};
use nisqplus_core::DecoderVariant;
use nisqplus_qec::error_model::PureDephasing;
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::QecError;
use serde::{Deserialize, Serialize};

/// One point of a logical-error-rate curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRatePoint {
    /// Physical error rate `p`.
    pub physical: f64,
    /// Measured logical error rate `PL`.
    pub logical: f64,
    /// Number of Monte-Carlo trials behind the estimate.
    pub trials: usize,
}

/// A logical-error-rate curve for one code distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorRateCurve {
    /// The code distance.
    pub distance: usize,
    /// Points ordered by increasing physical error rate.
    pub points: Vec<ErrorRatePoint>,
}

impl ErrorRateCurve {
    /// Measures a curve for the SFQ decoder under pure dephasing noise.
    ///
    /// # Errors
    ///
    /// Returns an error if the distance or any physical error rate is invalid.
    pub fn measure(
        distance: usize,
        physical_rates: &[f64],
        trials_per_point: usize,
        variant: DecoderVariant,
        seed: u64,
    ) -> Result<Self, QecError> {
        let lattice = Lattice::new(distance)?;
        let mut points = Vec::with_capacity(physical_rates.len());
        for (i, &p) in physical_rates.iter().enumerate() {
            let model = PureDephasing::new(p)?;
            let config = MonteCarloConfig::new(trials_per_point).with_seed(seed ^ (i as u64) << 32);
            let result = run_sfq_lifetime(&lattice, &model, &config, variant);
            points.push(ErrorRatePoint {
                physical: p,
                logical: result.logical_error_rate(),
                trials: trials_per_point,
            });
        }
        points.sort_by(|a, b| a.physical.total_cmp(&b.physical));
        Ok(ErrorRateCurve { distance, points })
    }

    /// Interpolates the logical error rate at an arbitrary physical rate
    /// (linear interpolation between the nearest measured points).
    #[must_use]
    pub fn logical_at(&self, physical: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if physical <= pts[0].physical {
            return Some(pts[0].logical);
        }
        if physical >= pts[pts.len() - 1].physical {
            return Some(pts[pts.len() - 1].logical);
        }
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (a.physical..=b.physical).contains(&physical) {
                let t = (physical - a.physical) / (b.physical - a.physical);
                return Some(a.logical + t * (b.logical - a.logical));
            }
        }
        None
    }
}

/// Estimates the pseudo-threshold of a curve: the physical error rate where
/// `PL = p`.
///
/// Returns `None` when the curve never crosses the `PL = p` diagonal inside
/// the measured range.
#[must_use]
pub fn pseudo_threshold(curve: &ErrorRateCurve) -> Option<f64> {
    let mut prev: Option<&ErrorRatePoint> = None;
    for point in &curve.points {
        let diff = point.logical - point.physical;
        if let Some(p) = prev {
            let prev_diff = p.logical - p.physical;
            if prev_diff <= 0.0 && diff >= 0.0 && (diff - prev_diff).abs() > f64::EPSILON {
                // Linear interpolation of the crossing.
                let t = -prev_diff / (diff - prev_diff);
                return Some(p.physical + t * (point.physical - p.physical));
            }
            if prev_diff <= 0.0 && diff <= 0.0 {
                // still below the diagonal
            }
        }
        prev = Some(point);
    }
    // The curve may sit entirely below the diagonal (pseudo-threshold above
    // the measured range) or entirely above it (no pseudo-threshold).
    None
}

/// Estimates the accuracy threshold from a family of curves at different code
/// distances: the physical error rate at which increasing the distance stops
/// helping, estimated as the average pairwise crossing point of consecutive
/// distances.
///
/// Returns `None` if fewer than two curves are given or no crossings are
/// found in the measured range.
#[must_use]
pub fn accuracy_threshold(curves: &[ErrorRateCurve]) -> Option<f64> {
    if curves.len() < 2 {
        return None;
    }
    let mut sorted: Vec<&ErrorRateCurve> = curves.iter().collect();
    sorted.sort_by_key(|c| c.distance);
    let mut crossings = Vec::new();
    for pair in sorted.windows(2) {
        let (small, large) = (pair[0], pair[1]);
        // Scan the overlapping physical range for the point where the larger
        // distance stops outperforming the smaller one.
        let mut prev: Option<(f64, f64)> = None;
        for point in &small.points {
            let p = point.physical;
            let Some(pl_large) = large.logical_at(p) else {
                continue;
            };
            let diff = pl_large - point.logical;
            if let Some((prev_p, prev_diff)) = prev {
                if prev_diff <= 0.0 && diff > 0.0 {
                    let t = -prev_diff / (diff - prev_diff);
                    crossings.push(prev_p + t * (p - prev_p));
                    break;
                }
            }
            prev = Some((p, diff));
        }
    }
    if crossings.is_empty() {
        None
    } else {
        Some(crossings.iter().sum::<f64>() / crossings.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_curve(distance: usize, pth: f64, c2: f64) -> ErrorRateCurve {
        // PL = 0.1 * (p / pth)^(c2 * d), the paper's scaling model.
        let points = (1..=12)
            .map(|i| {
                let p = 0.01 * i as f64;
                ErrorRatePoint {
                    physical: p,
                    logical: (0.1 * (p / pth).powf(c2 * distance as f64)).min(0.6),
                    trials: 1000,
                }
            })
            .collect();
        ErrorRateCurve { distance, points }
    }

    #[test]
    fn pseudo_threshold_of_synthetic_curve() {
        let curve = synthetic_curve(5, 0.05, 0.4);
        let pt = pseudo_threshold(&curve).expect("curve crosses the diagonal");
        assert!(pt > 0.01 && pt < 0.08, "pseudo-threshold {pt}");
        // Below the pseudo-threshold the code helps.
        assert!(curve.logical_at(pt * 0.5).unwrap() < pt * 0.5);
    }

    #[test]
    fn accuracy_threshold_is_near_the_model_pth() {
        let curves: Vec<ErrorRateCurve> = [3, 5, 7, 9]
            .iter()
            .map(|&d| synthetic_curve(d, 0.05, 0.4))
            .collect();
        let th = accuracy_threshold(&curves).expect("curves cross");
        assert!((th - 0.05).abs() < 0.01, "threshold {th}");
    }

    #[test]
    fn accuracy_threshold_requires_two_curves() {
        let curve = synthetic_curve(3, 0.05, 0.4);
        assert!(accuracy_threshold(&[curve]).is_none());
    }

    #[test]
    fn interpolation_is_monotone_on_monotone_data() {
        let curve = synthetic_curve(3, 0.05, 0.5);
        let a = curve.logical_at(0.021).unwrap();
        let b = curve.logical_at(0.029).unwrap();
        assert!(a < b);
        assert_eq!(curve.logical_at(0.0001), Some(curve.points[0].logical));
    }

    #[test]
    fn measured_curve_is_monotone_enough_at_small_sizes() {
        // A quick end-to-end check of the measurement pipeline with few trials.
        let curve = ErrorRateCurve::measure(3, &[0.01, 0.05, 0.12], 300, DecoderVariant::Final, 11)
            .unwrap();
        assert_eq!(curve.points.len(), 3);
        assert!(curve.points[0].logical <= curve.points[2].logical);
    }

    #[test]
    fn pseudo_threshold_none_when_always_above_diagonal() {
        // A hopeless decoder whose PL is always far above p.
        let points = (1..=5)
            .map(|i| ErrorRatePoint {
                physical: 0.01 * i as f64,
                logical: 0.5,
                trials: 10,
            })
            .collect();
        let curve = ErrorRateCurve {
            distance: 3,
            points,
        };
        assert!(pseudo_threshold(&curve).is_none());
    }
}
