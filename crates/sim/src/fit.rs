//! Fitting the logical-error-rate scaling model of Section VIII.
//!
//! The achievable error rates of an ideal surface-code decoder scale as
//! `PL ≈ 0.03 (p / pth)^(d/2)` [Fowler et al.]; the paper quantifies its
//! approximation by fitting `PL ≈ c1 (p / pth)^(c2 · d)` to the measured
//! curves and reporting the `c2` values (Table V).  A `c2` of 0.5 would be
//! an ideal decoder; smaller values capture the accuracy the hardware trades
//! away for speed.

use crate::threshold::ErrorRateCurve;
use serde::{Deserialize, Serialize};

/// Result of fitting `PL ≈ c1 (p/pth)^(c2 d)` to one curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingFit {
    /// The code distance the fit was performed for.
    pub distance: usize,
    /// The threshold value `pth` used to normalise the physical error rate.
    pub pth: f64,
    /// Fitted prefactor `c1`.
    pub c1: f64,
    /// Fitted effective-distance factor `c2`.
    pub c2: f64,
    /// Number of points used in the fit.
    pub points_used: usize,
}

impl ScalingFit {
    /// Predicts the logical error rate at a physical error rate `p`.
    #[must_use]
    pub fn predict(&self, p: f64) -> f64 {
        self.c1 * (p / self.pth).powf(self.c2 * self.distance as f64)
    }
}

/// Least-squares linear regression through `(x, y)` points; returns
/// `(intercept, slope)`.
fn linear_regression(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-15 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((intercept, slope))
}

/// Fits the scaling model to the sub-threshold portion of a measured curve.
///
/// Only points with `p < pth` and a non-zero measured logical error rate are
/// used (the model is linear in log-log space there).  Returns `None` when
/// fewer than two usable points remain.
#[must_use]
pub fn fit_scaling_exponent(curve: &ErrorRateCurve, pth: f64) -> Option<ScalingFit> {
    let log_points: Vec<(f64, f64)> = curve
        .points
        .iter()
        .filter(|pt| pt.physical < pth && pt.logical > 0.0)
        .map(|pt| ((pt.physical / pth).ln(), pt.logical.ln()))
        .collect();
    let (intercept, slope) = linear_regression(&log_points)?;
    Some(ScalingFit {
        distance: curve.distance,
        pth,
        c1: intercept.exp(),
        c2: slope / curve.distance as f64,
        points_used: log_points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ErrorRatePoint;

    fn model_curve(distance: usize, c1: f64, c2: f64, pth: f64) -> ErrorRateCurve {
        let points = (1..=20)
            .map(|i| {
                let p = pth * i as f64 / 22.0;
                ErrorRatePoint {
                    physical: p,
                    logical: c1 * (p / pth).powf(c2 * distance as f64),
                    trials: 100_000,
                }
            })
            .collect();
        ErrorRateCurve { distance, points }
    }

    #[test]
    fn recovers_known_exponent() {
        for (d, c2) in [(3, 0.65), (5, 0.43), (7, 0.31), (9, 0.32)] {
            let curve = model_curve(d, 0.05, c2, 0.05);
            let fit = fit_scaling_exponent(&curve, 0.05).unwrap();
            assert!(
                (fit.c2 - c2).abs() < 1e-6,
                "d={d}: fitted {} expected {c2}",
                fit.c2
            );
            assert!((fit.c1 - 0.05).abs() < 1e-6);
            assert_eq!(fit.distance, d);
        }
    }

    #[test]
    fn prediction_matches_the_model() {
        let curve = model_curve(5, 0.03, 0.5, 0.05);
        let fit = fit_scaling_exponent(&curve, 0.05).unwrap();
        let expected = 0.03 * (0.01f64 / 0.05).powf(0.5 * 5.0);
        assert!((fit.predict(0.01) - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn too_few_points_returns_none() {
        let curve = ErrorRateCurve {
            distance: 3,
            points: vec![ErrorRatePoint {
                physical: 0.01,
                logical: 0.001,
                trials: 10,
            }],
        };
        assert!(fit_scaling_exponent(&curve, 0.05).is_none());
    }

    #[test]
    fn zero_logical_rates_are_skipped() {
        let mut curve = model_curve(3, 0.05, 0.5, 0.05);
        curve.points[0].logical = 0.0;
        curve.points[1].logical = 0.0;
        let fit = fit_scaling_exponent(&curve, 0.05).unwrap();
        assert_eq!(fit.points_used, curve.points.len() - 2);
    }

    #[test]
    fn regression_degenerate_input() {
        assert!(linear_regression(&[]).is_none());
        assert!(linear_regression(&[(1.0, 1.0)]).is_none());
        assert!(linear_regression(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }
}
