//! Decoder execution-time analysis (Table IV and Figure 10 c).
//!
//! The mesh decoder reports its work in clock cycles; the synthesized module
//! latency (Table III) converts cycles into wall-clock nanoseconds.  This
//! module aggregates per-decode samples into the max / average / standard
//! deviation rows of Table IV and the cycle-count distributions of
//! Figure 10(c).

use crate::stats::{histogram, Summary};
use serde::{Deserialize, Serialize};

/// Converts decoder cycles into nanoseconds using a fixed cycle period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleTimeConverter {
    cycle_time_ps: f64,
}

impl CycleTimeConverter {
    /// Creates a converter from a cycle period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive.
    #[must_use]
    pub fn new(cycle_time_ps: f64) -> Self {
        assert!(cycle_time_ps > 0.0, "cycle time must be positive");
        CycleTimeConverter { cycle_time_ps }
    }

    /// The paper's synthesized module latency (162.72 ps, Table III).
    #[must_use]
    pub fn paper_reference() -> Self {
        CycleTimeConverter::new(162.72)
    }

    /// The cycle period in picoseconds.
    #[must_use]
    pub fn cycle_time_ps(&self) -> f64 {
        self.cycle_time_ps
    }

    /// Converts a cycle count into nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: usize) -> f64 {
        cycles as f64 * self.cycle_time_ps * 1e-3
    }

    /// Converts a slice of cycle counts into nanoseconds.
    #[must_use]
    pub fn all_to_ns(&self, cycles: &[usize]) -> Vec<f64> {
        cycles.iter().map(|&c| self.cycles_to_ns(c)).collect()
    }
}

/// One row of Table IV: decoder execution time for one code distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTimeRow {
    /// Code distance.
    pub distance: usize,
    /// Maximum observed decode time in nanoseconds.
    pub max_ns: f64,
    /// Average decode time in nanoseconds.
    pub average_ns: f64,
    /// Standard deviation of the decode time in nanoseconds.
    pub std_dev_ns: f64,
    /// Number of decodes behind the row.
    pub samples: usize,
}

impl ExecutionTimeRow {
    /// Builds the row from raw cycle samples and a cycle-time converter.
    #[must_use]
    pub fn from_cycles(distance: usize, cycles: &[usize], converter: &CycleTimeConverter) -> Self {
        let times = converter.all_to_ns(cycles);
        let summary = Summary::of(&times);
        ExecutionTimeRow {
            distance,
            max_ns: summary.max.max(0.0),
            average_ns: summary.mean,
            std_dev_ns: summary.std_dev,
            samples: summary.count,
        }
    }
}

/// The Figure 10(c)-style truncated cycle-count distribution for one distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleDistribution {
    /// Code distance.
    pub distance: usize,
    /// Bin edges (in cycles).
    pub bin_edges: Vec<f64>,
    /// Estimated probability mass per bin.
    pub densities: Vec<f64>,
}

impl CycleDistribution {
    /// Builds the distribution from raw cycle samples, truncated at `max_cycles`.
    #[must_use]
    pub fn from_cycles(distance: usize, cycles: &[usize], bins: usize, max_cycles: usize) -> Self {
        let samples: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
        let (bin_edges, densities) = histogram(&samples, bins, max_cycles as f64);
        CycleDistribution {
            distance,
            bin_edges,
            densities,
        }
    }

    /// The bin (by lower edge, in cycles) with the highest probability mass.
    #[must_use]
    pub fn mode_cycles(&self) -> f64 {
        let mut best = 0usize;
        for (i, &d) in self.densities.iter().enumerate() {
            if d > self.densities[best] {
                best = i;
            }
        }
        self.bin_edges.get(best).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_matches_paper_units() {
        let converter = CycleTimeConverter::paper_reference();
        // 118 cycles at 162.72 ps is about 19.2 ns — the paper's d=9 maximum.
        let ns = converter.cycles_to_ns(118);
        assert!((ns - 19.2).abs() < 0.1, "{ns}");
        assert_eq!(converter.cycles_to_ns(0), 0.0);
        assert_eq!(converter.all_to_ns(&[1, 2]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cycle_time_is_rejected() {
        let _ = CycleTimeConverter::new(0.0);
    }

    #[test]
    fn execution_row_statistics() {
        let converter = CycleTimeConverter::new(1000.0); // 1 ns per cycle
        let row = ExecutionTimeRow::from_cycles(5, &[1, 2, 3, 10], &converter);
        assert_eq!(row.distance, 5);
        assert_eq!(row.samples, 4);
        assert!((row.max_ns - 10.0).abs() < 1e-9);
        assert!((row.average_ns - 4.0).abs() < 1e-9);
        assert!(row.std_dev_ns > 3.0 && row.std_dev_ns < 4.0);
    }

    #[test]
    fn empty_samples_produce_zero_row() {
        let converter = CycleTimeConverter::paper_reference();
        let row = ExecutionTimeRow::from_cycles(3, &[], &converter);
        assert_eq!(row.samples, 0);
        assert_eq!(row.average_ns, 0.0);
    }

    #[test]
    fn cycle_distribution_mode() {
        let cycles = vec![1, 2, 2, 2, 3, 9, 9];
        let dist = CycleDistribution::from_cycles(3, &cycles, 5, 10);
        assert_eq!(dist.densities.len(), 5);
        assert!(dist.mode_cycles() <= 4.0);
        let sum: f64 = dist.densities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
