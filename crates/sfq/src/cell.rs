//! The ERSFQ standard-cell library (Table II of the paper).
//!
//! The library contains four clocked logic gates (AND2, OR2, XOR2, NOT) and a
//! Destructive Read-Out D flip-flop (DRO DFF) used exclusively for path
//! balancing.  Each cell is characterised by silicon area, Josephson-junction
//! count (the SFQ measure of complexity/cost) and intrinsic delay.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The cell types available in the ERSFQ library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellType {
    /// Two-input AND gate.
    And2,
    /// Two-input OR gate.
    Or2,
    /// Two-input XOR gate.
    Xor2,
    /// Inverter.
    Not,
    /// Destructive Read-Out D flip-flop, used for path balancing.
    DroDff,
}

impl CellType {
    /// All cell types, in Table II order.
    pub const ALL: [CellType; 5] = [
        CellType::And2,
        CellType::Or2,
        CellType::Xor2,
        CellType::Not,
        CellType::DroDff,
    ];

    /// The number of logic inputs the cell consumes.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            CellType::And2 | CellType::Or2 | CellType::Xor2 => 2,
            CellType::Not | CellType::DroDff => 1,
        }
    }

    /// Returns `true` for combinational logic gates (everything except the DFF).
    #[must_use]
    pub fn is_logic(self) -> bool {
        !matches!(self, CellType::DroDff)
    }

    /// Evaluates the cell's boolean function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    #[must_use]
    pub fn evaluate(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            CellType::And2 => inputs[0] && inputs[1],
            CellType::Or2 => inputs[0] || inputs[1],
            CellType::Xor2 => inputs[0] ^ inputs[1],
            CellType::Not => !inputs[0],
            CellType::DroDff => inputs[0],
        }
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellType::And2 => "AND2",
            CellType::Or2 => "OR2",
            CellType::Xor2 => "XOR2",
            CellType::Not => "NOT",
            CellType::DroDff => "DRO DFF",
        };
        write!(f, "{name}")
    }
}

/// Physical characteristics of one library cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Cell area in square micrometres.
    pub area_um2: f64,
    /// Number of Josephson junctions.
    pub jj_count: u32,
    /// Intrinsic cell delay in picoseconds.
    pub delay_ps: f64,
    /// Dynamic power dissipation in microwatts at the nominal clock rate.
    pub power_uw: f64,
}

/// A complete standard-cell library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    specs: [CellSpec; 5],
    /// Per-stage clock-distribution / interconnect overhead added on top of a
    /// cell's intrinsic delay when estimating clocked-stage latency.
    stage_overhead_ps: f64,
}

impl CellLibrary {
    /// The ERSFQ library used throughout the paper (Table II).
    ///
    /// Area, JJ count and delay are taken verbatim from Table II.  Per-cell
    /// power is calibrated so that the synthesized sub-circuit reports
    /// reproduce the power column of Table III (0.026 µW per logic gate).
    #[must_use]
    pub fn ersfq() -> Self {
        let spec = |area_um2: f64, jj_count: u32, delay_ps: f64, power_uw: f64| CellSpec {
            area_um2,
            jj_count,
            delay_ps,
            power_uw,
        };
        CellLibrary {
            name: "ERSFQ".to_string(),
            specs: [
                // AND2
                spec(4200.0, 17, 9.2, 0.026),
                // OR2
                spec(4200.0, 12, 7.2, 0.026),
                // XOR2
                spec(4200.0, 12, 5.7, 0.026),
                // NOT
                spec(4200.0, 13, 9.2, 0.026),
                // DRO DFF
                spec(3360.0, 10, 5.0, 0.0455),
            ],
            stage_overhead_ps: 10.0,
        }
    }

    /// The library's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Characteristics of one cell type.
    #[must_use]
    pub fn spec(&self, cell: CellType) -> CellSpec {
        self.specs[cell_index(cell)]
    }

    /// Per-stage overhead (clock distribution and passive interconnect) in
    /// picoseconds, added to a cell's intrinsic delay when computing the
    /// latency of a clocked pipeline stage.
    #[must_use]
    pub fn stage_overhead_ps(&self) -> f64 {
        self.stage_overhead_ps
    }

    /// Returns a copy of the library with a different stage overhead, for
    /// sensitivity studies.
    #[must_use]
    pub fn with_stage_overhead_ps(mut self, overhead: f64) -> Self {
        self.stage_overhead_ps = overhead;
        self
    }

    /// Iterates over `(cell type, spec)` pairs in Table II order.
    pub fn iter(&self) -> impl Iterator<Item = (CellType, CellSpec)> + '_ {
        CellType::ALL.iter().map(move |&c| (c, self.spec(c)))
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::ersfq()
    }
}

fn cell_index(cell: CellType) -> usize {
    match cell {
        CellType::And2 => 0,
        CellType::Or2 => 1,
        CellType::Xor2 => 2,
        CellType::Not => 3,
        CellType::DroDff => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_values_are_reproduced() {
        let lib = CellLibrary::ersfq();
        let and = lib.spec(CellType::And2);
        assert_eq!(and.area_um2, 4200.0);
        assert_eq!(and.jj_count, 17);
        assert_eq!(and.delay_ps, 9.2);
        let or = lib.spec(CellType::Or2);
        assert_eq!(or.jj_count, 12);
        assert_eq!(or.delay_ps, 7.2);
        let xor = lib.spec(CellType::Xor2);
        assert_eq!(xor.delay_ps, 5.7);
        let not = lib.spec(CellType::Not);
        assert_eq!(not.jj_count, 13);
        let dff = lib.spec(CellType::DroDff);
        assert_eq!(dff.area_um2, 3360.0);
        assert_eq!(dff.jj_count, 10);
        assert_eq!(dff.delay_ps, 5.0);
    }

    #[test]
    fn logic_cells_share_area_but_dff_is_smaller() {
        let lib = CellLibrary::ersfq();
        for cell in [CellType::And2, CellType::Or2, CellType::Xor2, CellType::Not] {
            assert_eq!(lib.spec(cell).area_um2, 4200.0);
            assert!(cell.is_logic());
        }
        assert!(lib.spec(CellType::DroDff).area_um2 < 4200.0);
        assert!(!CellType::DroDff.is_logic());
    }

    #[test]
    fn boolean_functions() {
        assert!(CellType::And2.evaluate(&[true, true]));
        assert!(!CellType::And2.evaluate(&[true, false]));
        assert!(CellType::Or2.evaluate(&[false, true]));
        assert!(!CellType::Or2.evaluate(&[false, false]));
        assert!(CellType::Xor2.evaluate(&[true, false]));
        assert!(!CellType::Xor2.evaluate(&[true, true]));
        assert!(CellType::Not.evaluate(&[false]));
        assert!(CellType::DroDff.evaluate(&[true]));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_is_enforced() {
        let _ = CellType::And2.evaluate(&[true]);
    }

    #[test]
    fn arities() {
        assert_eq!(CellType::And2.arity(), 2);
        assert_eq!(CellType::Not.arity(), 1);
        assert_eq!(CellType::DroDff.arity(), 1);
    }

    #[test]
    fn display_names_match_table() {
        assert_eq!(CellType::And2.to_string(), "AND2");
        assert_eq!(CellType::DroDff.to_string(), "DRO DFF");
    }

    #[test]
    fn stage_overhead_is_configurable() {
        let lib = CellLibrary::ersfq().with_stage_overhead_ps(12.5);
        assert_eq!(lib.stage_overhead_ps(), 12.5);
        assert_eq!(CellLibrary::default().name(), "ERSFQ");
    }

    #[test]
    fn iter_covers_all_cells() {
        let lib = CellLibrary::ersfq();
        assert_eq!(lib.iter().count(), 5);
    }
}
