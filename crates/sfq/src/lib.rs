//! Single-Flux-Quantum (SFQ) hardware modelling for the NISQ+ reproduction.
//!
//! The paper implements its approximate decoder as a mesh of modules built
//! from an **ERSFQ cell library** (Table II), synthesized with path-balancing
//! technology-mapping tools (Section VII) and characterised by logical depth,
//! latency, area, Josephson-junction count and power (Table III).  This crate
//! provides the classical-hardware substrate for that flow:
//!
//! * [`cell`] — the ERSFQ cell library with the paper's area / JJ / delay
//!   figures,
//! * [`netlist`] — gate-level netlists (DAGs) with levelisation and
//!   validity checking,
//! * [`synth`] — wide-gate decomposition and full path balancing with
//!   DRO-DFF insertion, the property dc-biased SFQ logic requires,
//! * [`sim`] — cycle-accurate simulation of clocked SFQ netlists (every gate
//!   advances one level per clock pulse, no flip-flops needed),
//! * [`report`] — circuit characterisation and mesh/refrigerator budget
//!   reports (Table III and the Section VIII feasibility analysis).
//!
//! No quantum computation happens here: as the paper stresses, "Single Flux
//! Quantum is classical logic implemented in superconducting hardware".
//!
//! # Example
//!
//! ```rust
//! use nisqplus_sfq::cell::CellLibrary;
//! use nisqplus_sfq::netlist::NetlistBuilder;
//! use nisqplus_sfq::synth::synthesize;
//!
//! let library = CellLibrary::ersfq();
//! let mut builder = NetlistBuilder::new("majority");
//! let a = builder.input("a");
//! let b = builder.input("b");
//! let c = builder.input("c");
//! let ab = builder.and2(a, b);
//! let bc = builder.and2(b, c);
//! let ca = builder.and2(c, a);
//! let or1 = builder.or2(ab, bc);
//! let out = builder.or2(or1, ca);
//! builder.output("maj", out);
//! let report = synthesize(&builder.build().unwrap(), &library);
//! assert_eq!(report.logical_depth, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cell;
pub mod error;
pub mod netlist;
pub mod report;
pub mod sim;
pub mod synth;

pub use cell::{CellLibrary, CellSpec, CellType};
pub use error::SfqError;
pub use netlist::{GateId, NetId, Netlist, NetlistBuilder};
pub use report::{CircuitCharacterization, MeshReport, RefrigeratorBudget};
pub use sim::NetlistSimulator;
pub use synth::{path_balance, synthesize, SynthesisReport};
