//! Error types for the SFQ hardware model.

use std::error::Error;
use std::fmt;

/// Errors produced while building or processing SFQ netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SfqError {
    /// A gate references a net that no gate or primary input drives.
    UndrivenNet {
        /// The net in question (its numeric id).
        net: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle,
    /// The netlist declares no primary outputs.
    NoOutputs,
    /// A gate was given the wrong number of inputs for its cell type.
    ArityMismatch {
        /// The cell type name.
        cell: &'static str,
        /// Number of inputs provided.
        got: usize,
        /// Number of inputs expected.
        expected: usize,
    },
}

impl fmt::Display for SfqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfqError::UndrivenNet { net } => {
                write!(f, "net {net} is not driven by any gate or input")
            }
            SfqError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            SfqError::NoOutputs => write!(f, "netlist declares no primary outputs"),
            SfqError::ArityMismatch {
                cell,
                got,
                expected,
            } => {
                write!(
                    f,
                    "cell {cell} expects {expected} inputs but received {got}"
                )
            }
        }
    }
}

impl Error for SfqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SfqError::UndrivenNet { net: 3 }
            .to_string()
            .contains("net 3"));
        assert!(SfqError::CombinationalCycle.to_string().contains("cycle"));
        assert!(SfqError::NoOutputs.to_string().contains("outputs"));
        let err = SfqError::ArityMismatch {
            cell: "AND2",
            got: 3,
            expected: 2,
        };
        assert!(err.to_string().contains("AND2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SfqError>();
    }
}
