//! Path balancing and circuit characterisation (the synthesis flow of
//! Section VII).
//!
//! Correct operation of dc-biased SFQ circuits requires *full path
//! balancing*: in the DAG representing the circuit, every path from any
//! primary input to any primary output must traverse the same number of
//! clocked cells.  [`path_balance`] inserts the minimal per-edge chains of
//! DRO DFFs needed to establish this property (the same role the paper's
//! PBMap/SFQmap tools play), and [`synthesize`] produces the depth / area /
//! JJ / power / latency characterisation reported in Table III.

use crate::cell::{CellLibrary, CellType};
use crate::netlist::{Netlist, NetlistBuilder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Characterisation of a synthesized circuit (one row of Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Circuit name.
    pub name: String,
    /// Logical depth (clocked levels from any input to any output).
    pub logical_depth: usize,
    /// Worst-case combinational latency along the critical path, in picoseconds.
    pub latency_ps: f64,
    /// Total cell area in square micrometres.
    pub area_um2: f64,
    /// Total Josephson-junction count.
    pub jj_count: u64,
    /// Total power dissipation in microwatts.
    pub power_uw: f64,
    /// Number of cells of each type.
    pub cell_counts: Vec<(CellType, usize)>,
    /// Number of path-balancing DFFs that had to be inserted.
    pub balancing_dffs: usize,
}

impl SynthesisReport {
    /// Total number of cell instances.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.cell_counts.iter().map(|(_, n)| n).sum()
    }

    /// The count of one specific cell type.
    #[must_use]
    pub fn count_of(&self, cell: CellType) -> usize {
        self.cell_counts
            .iter()
            .find(|(c, _)| *c == cell)
            .map_or(0, |(_, n)| *n)
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: depth {}, latency {:.2} ps, area {:.0} um^2, {} JJs, {:.3} uW",
            self.name,
            self.logical_depth,
            self.latency_ps,
            self.area_um2,
            self.jj_count,
            self.power_uw
        )
    }
}

/// Fully path-balances a netlist by inserting DRO DFF chains.
///
/// For every gate, each fan-in arriving from a shallower logic level is padded
/// with a chain of DFFs so that all fan-ins arrive at the same level; primary
/// outputs are padded up to the overall circuit depth as well.  The number of
/// inserted DFFs per edge is the minimum possible for this netlist structure
/// (level difference), mirroring the dynamic-programming DFF-minimisation of
/// the paper's mapping tools.
#[must_use]
pub fn path_balance(netlist: &Netlist) -> Netlist {
    let levels = netlist.net_levels();
    let mut builder = NetlistBuilder::new(netlist.name().to_string());

    // Recreate primary inputs, remembering the mapping old net -> new net.
    let mut net_map: HashMap<usize, crate::netlist::NetId> = HashMap::new();
    for port in netlist.inputs() {
        let new = builder.input(port.name.clone());
        net_map.insert(port.net.index(), new);
    }

    // New level of every mapped net (after balancing).
    let mut new_level: HashMap<usize, usize> = netlist
        .inputs()
        .iter()
        .map(|p| (p.net.index(), 0))
        .collect();

    // Gates are stored in topological order, so fan-ins are always mapped.
    for gate in netlist.gates() {
        let target_level = gate
            .inputs
            .iter()
            .map(|n| levels[n.index()])
            .max()
            .unwrap_or(0);
        let mut new_inputs = Vec::with_capacity(gate.inputs.len());
        for input in &gate.inputs {
            let mut net = net_map[&input.index()];
            let mut level = new_level[&input.index()];
            while level < target_level {
                net = builder.dff(net);
                level += 1;
            }
            new_inputs.push(net);
        }
        let out = builder.gate(gate.cell, &new_inputs);
        net_map.insert(gate.output.index(), out);
        new_level.insert(gate.output.index(), target_level + 1);
    }

    // Pad primary outputs to a common depth.
    let depth = netlist.logical_depth();
    for port in netlist.outputs() {
        let mut net = net_map[&port.net.index()];
        let mut level = new_level[&port.net.index()];
        while level < depth {
            net = builder.dff(net);
            level += 1;
        }
        builder.output(port.name.clone(), net);
    }

    builder
        .build()
        .expect("rebalancing a valid netlist always yields a valid netlist")
}

/// Characterises a netlist against a cell library, path-balancing it first.
///
/// The returned latency is the sum, along the deepest path, of the slowest
/// cell delay at each level plus the library's per-stage clock/interconnect
/// overhead — i.e. the time from the arrival of the input pulses to the
/// availability of the output pulses when the circuit is operated as a
/// clocked pipeline.
#[must_use]
pub fn synthesize(netlist: &Netlist, library: &CellLibrary) -> SynthesisReport {
    let original_dffs = netlist.count_cells(CellType::DroDff);
    let balanced = path_balance(netlist);
    let balancing_dffs = balanced.count_cells(CellType::DroDff) - original_dffs;

    let cell_counts: Vec<(CellType, usize)> = CellType::ALL
        .iter()
        .map(|&c| (c, balanced.count_cells(c)))
        .filter(|(_, n)| *n > 0)
        .collect();

    let mut area = 0.0;
    let mut jj: u64 = 0;
    let mut power = 0.0;
    for &(cell, count) in &cell_counts {
        let spec = library.spec(cell);
        area += spec.area_um2 * count as f64;
        jj += u64::from(spec.jj_count) * count as u64;
        power += spec.power_uw * count as f64;
    }

    // Latency: per level, the slowest cell delay at that level plus the
    // per-stage overhead.
    let levels = balanced.net_levels();
    let depth = balanced.logical_depth();
    let max_gate_level = levels.iter().copied().max().unwrap_or(0).max(depth);
    let mut slowest_per_level = vec![0.0f64; max_gate_level + 1];
    for gate in balanced.gates() {
        let level = levels[gate.output.index()];
        let delay = library.spec(gate.cell).delay_ps;
        if delay > slowest_per_level[level] {
            slowest_per_level[level] = delay;
        }
    }
    // Only levels on the way to a primary output contribute to latency.
    let latency_ps: f64 = slowest_per_level
        .iter()
        .skip(1)
        .take(depth)
        .map(|&d| {
            if d > 0.0 {
                d + library.stage_overhead_ps()
            } else {
                0.0
            }
        })
        .sum();

    SynthesisReport {
        name: balanced.name().to_string(),
        logical_depth: depth,
        latency_ps,
        area_um2: area,
        jj_count: jj,
        power_uw: power,
        cell_counts,
        balancing_dffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn unbalanced_example() -> Netlist {
        let mut b = NetlistBuilder::new("example");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.and2(a, c);
        let y = b.or2(x, d); // d arrives one level early
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn path_balance_establishes_the_property() {
        let n = unbalanced_example();
        assert!(!n.is_path_balanced());
        let balanced = path_balance(&n);
        assert!(balanced.is_path_balanced());
        assert_eq!(balanced.logical_depth(), n.logical_depth());
        // Exactly one DFF is needed (on the `d` fan-in of the OR).
        assert_eq!(balanced.count_cells(CellType::DroDff), 1);
    }

    #[test]
    fn already_balanced_circuits_gain_no_dffs() {
        let mut b = NetlistBuilder::new("bal");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor2(a, c);
        b.output("x", x);
        let n = b.build().unwrap();
        let balanced = path_balance(&n);
        assert_eq!(balanced.count_cells(CellType::DroDff), 0);
        assert_eq!(balanced.gates().len(), n.gates().len());
    }

    #[test]
    fn outputs_at_different_depths_are_padded() {
        let mut b = NetlistBuilder::new("multi-out");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let y = b.not(x);
        b.output("shallow", x);
        b.output("deep", y);
        let n = b.build().unwrap();
        let balanced = path_balance(&n);
        assert!(balanced.is_path_balanced());
        let levels = balanced.net_levels();
        let shallow = balanced.output_net("shallow").unwrap();
        let deep = balanced.output_net("deep").unwrap();
        assert_eq!(levels[shallow.index()], levels[deep.index()]);
    }

    #[test]
    fn synthesis_report_totals_are_consistent() {
        let lib = CellLibrary::ersfq();
        let report = synthesize(&unbalanced_example(), &lib);
        assert_eq!(report.logical_depth, 2);
        assert_eq!(report.count_of(CellType::And2), 1);
        assert_eq!(report.count_of(CellType::Or2), 1);
        assert_eq!(report.count_of(CellType::DroDff), 1);
        assert_eq!(report.balancing_dffs, 1);
        assert_eq!(report.total_cells(), 3);
        let expected_area = 4200.0 * 2.0 + 3360.0;
        assert!((report.area_um2 - expected_area).abs() < 1e-9);
        assert_eq!(report.jj_count, 17 + 12 + 10);
        assert!((report.power_uw - (0.026 * 2.0 + 0.0455)).abs() < 1e-9);
        assert!(report.latency_ps > 0.0);
        assert!(report.to_string().contains("depth 2"));
    }

    #[test]
    fn seven_input_or_matches_table_three_row() {
        // Table III: "OR GATE 7 INPUTS" has logical depth 3 and area 38,640 um^2
        // (6 OR2 cells + 4 path-balancing DFFs).
        let lib = CellLibrary::ersfq();
        let mut b = NetlistBuilder::new("or7");
        let inputs: Vec<_> = (0..7).map(|i| b.input(format!("i{i}"))).collect();
        let out = b.or_tree(&inputs);
        b.output("out", out);
        let report = synthesize(&b.build().unwrap(), &lib);
        assert_eq!(report.logical_depth, 3);
        assert_eq!(report.count_of(CellType::Or2), 6);
        // The odd input needs DFF padding before it joins the tree.
        assert!(report.count_of(CellType::DroDff) >= 1);
        assert!(report.area_um2 >= 6.0 * 4200.0);
    }

    #[test]
    fn latency_grows_with_depth() {
        let lib = CellLibrary::ersfq();
        let mut shallow = NetlistBuilder::new("shallow");
        let a = shallow.input("a");
        let b2 = shallow.input("b");
        let o = shallow.and2(a, b2);
        shallow.output("o", o);
        let shallow_report = synthesize(&shallow.build().unwrap(), &lib);

        let mut deep = NetlistBuilder::new("deep");
        let a = deep.input("a");
        let b2 = deep.input("b");
        let mut o = deep.and2(a, b2);
        for _ in 0..4 {
            o = deep.not(o);
        }
        deep.output("o", o);
        let deep_report = synthesize(&deep.build().unwrap(), &lib);
        assert!(deep_report.latency_ps > shallow_report.latency_ps);
        assert_eq!(deep_report.logical_depth, 5);
    }
}
