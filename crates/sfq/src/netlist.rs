//! Gate-level netlists.
//!
//! A netlist is a DAG of library cells connected by nets.  Primary inputs and
//! outputs are named, so the decoder-module sub-circuits of the paper (grow,
//! pair-request, pair-grant, pair, reset — Figure 9) can be assembled and
//! characterised individually and then combined.

use crate::cell::CellType;
use crate::error::SfqError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a net (a wire) in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The raw index of the net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate instance in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// The raw index of the gate.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The library cell implementing the gate.
    pub cell: CellType,
    /// Input nets, in cell-pin order.
    pub inputs: Vec<NetId>,
    /// The net driven by the gate.
    pub output: NetId,
}

/// A named primary input or output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// The net attached to the port.
    pub net: NetId,
}

/// An immutable, validated gate-level netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    num_nets: usize,
    gates: Vec<Gate>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
}

impl Netlist {
    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of nets in the netlist.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// The gate instances.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// The primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Number of gates of a given cell type.
    #[must_use]
    pub fn count_cells(&self, cell: CellType) -> usize {
        self.gates.iter().filter(|g| g.cell == cell).count()
    }

    /// Computes the logic level of every net: primary inputs are level 0 and
    /// every gate output is one more than the maximum level of its inputs.
    ///
    /// Returns a vector indexed by net id.  Nets that are neither inputs nor
    /// gate outputs (impossible in a validated netlist) get level 0.
    #[must_use]
    pub fn net_levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.num_nets];
        // Gates were appended in topological order by the builder, so one
        // forward pass suffices.
        for gate in &self.gates {
            let max_in = gate.inputs.iter().map(|n| levels[n.0]).max().unwrap_or(0);
            levels[gate.output.0] = max_in + 1;
        }
        levels
    }

    /// The logical depth: the maximum level over all primary outputs.
    #[must_use]
    pub fn logical_depth(&self) -> usize {
        let levels = self.net_levels();
        self.outputs
            .iter()
            .map(|p| levels[p.net.0])
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if every gate's fan-ins arrive at the same logic level —
    /// the *full path balancing* property dc-biased SFQ circuits require.
    #[must_use]
    pub fn is_path_balanced(&self) -> bool {
        let levels = self.net_levels();
        let gates_balanced = self.gates.iter().all(|gate| {
            let lvls: Vec<usize> = gate.inputs.iter().map(|n| levels[n.0]).collect();
            lvls.iter().all(|&l| l == lvls[0])
        });
        // All primary outputs must also be produced at the same level.
        let out_levels: Vec<usize> = self.outputs.iter().map(|p| levels[p.net.0]).collect();
        let outputs_balanced = out_levels.windows(2).all(|w| w[0] == w[1]);
        gates_balanced && outputs_balanced
    }

    /// Looks up a primary input net by name.
    #[must_use]
    pub fn input_net(&self, name: &str) -> Option<NetId> {
        self.inputs.iter().find(|p| p.name == name).map(|p| p.net)
    }

    /// Looks up a primary output net by name.
    #[must_use]
    pub fn output_net(&self, name: &str) -> Option<NetId> {
        self.outputs.iter().find(|p| p.name == name).map(|p| p.net)
    }
}

/// An incremental netlist builder.
///
/// Gates must be created after the nets that feed them (the builder only
/// hands out net ids for existing signals), which guarantees the stored gate
/// order is topological.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    num_nets: usize,
    gates: Vec<Gate>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    driven: Vec<bool>,
}

impl NetlistBuilder {
    /// Starts building a circuit with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            num_nets: 0,
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            driven: Vec::new(),
        }
    }

    fn fresh_net(&mut self, driven: bool) -> NetId {
        let id = NetId(self.num_nets);
        self.num_nets += 1;
        self.driven.push(driven);
        id
    }

    /// Declares a primary input and returns its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let net = self.fresh_net(true);
        self.inputs.push(Port {
            name: name.into(),
            net,
        });
        net
    }

    /// Declares a primary output driven by `net`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push(Port {
            name: name.into(),
            net,
        });
    }

    /// Adds a gate of arbitrary cell type.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell's arity.
    pub fn gate(&mut self, cell: CellType, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            cell.arity(),
            "cell {cell} expects {} inputs, got {}",
            cell.arity(),
            inputs.len()
        );
        let output = self.fresh_net(true);
        self.gates.push(Gate {
            cell,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Adds a two-input AND gate.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellType::And2, &[a, b])
    }

    /// Adds a two-input OR gate.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellType::Or2, &[a, b])
    }

    /// Adds a two-input XOR gate.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellType::Xor2, &[a, b])
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(CellType::Not, &[a])
    }

    /// Adds a path-balancing DRO D flip-flop.
    pub fn dff(&mut self, a: NetId) -> NetId {
        self.gate(CellType::DroDff, &[a])
    }

    /// Adds a balanced OR tree over an arbitrary number of inputs.
    ///
    /// Wide OR gates (e.g. the 7-input OR of Table III) are decomposed into a
    /// tree of OR2 cells of logarithmic depth.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn or_tree(&mut self, inputs: &[NetId]) -> NetId {
        assert!(!inputs.is_empty(), "or_tree requires at least one input");
        let mut layer: Vec<NetId> = inputs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                if chunk.len() == 2 {
                    next.push(self.or2(chunk[0], chunk[1]));
                } else {
                    next.push(chunk[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Adds a balanced AND tree over an arbitrary number of inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn and_tree(&mut self, inputs: &[NetId]) -> NetId {
        assert!(!inputs.is_empty(), "and_tree requires at least one input");
        let mut layer: Vec<NetId> = inputs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                if chunk.len() == 2 {
                    next.push(self.and2(chunk[0], chunk[1]));
                } else {
                    next.push(chunk[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Finalises the netlist, validating its structure.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has no outputs or references undriven
    /// nets.
    pub fn build(self) -> Result<Netlist, SfqError> {
        if self.outputs.is_empty() {
            return Err(SfqError::NoOutputs);
        }
        for gate in &self.gates {
            for input in &gate.inputs {
                if !self.driven.get(input.0).copied().unwrap_or(false) {
                    return Err(SfqError::UndrivenNet { net: input.0 });
                }
            }
        }
        for port in &self.outputs {
            if !self.driven.get(port.net.0).copied().unwrap_or(false) {
                return Err(SfqError::UndrivenNet { net: port.net.0 });
            }
        }
        Ok(Netlist {
            name: self.name,
            num_nets: self.num_nets,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("test");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let y = b.not(x);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_netlist() {
        let n = small_circuit();
        assert_eq!(n.name(), "test");
        assert_eq!(n.gates().len(), 2);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.count_cells(CellType::And2), 1);
        assert_eq!(n.count_cells(CellType::Not), 1);
        assert_eq!(n.count_cells(CellType::Or2), 0);
        assert_eq!(n.logical_depth(), 2);
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut b = NetlistBuilder::new("empty");
        let _ = b.input("a");
        assert_eq!(b.build().unwrap_err(), SfqError::NoOutputs);
    }

    #[test]
    fn levels_increase_monotonically() {
        let n = small_circuit();
        let levels = n.net_levels();
        let and_out = n.gates()[0].output;
        let not_out = n.gates()[1].output;
        assert_eq!(levels[and_out.index()], 1);
        assert_eq!(levels[not_out.index()], 2);
    }

    #[test]
    fn or_tree_depth_is_logarithmic() {
        let mut b = NetlistBuilder::new("or7");
        let inputs: Vec<NetId> = (0..7).map(|i| b.input(format!("i{i}"))).collect();
        let out = b.or_tree(&inputs);
        b.output("out", out);
        let n = b.build().unwrap();
        // 7-input OR: ceil(log2 7) = 3 levels, 6 OR2 cells — matching Table III.
        assert_eq!(n.logical_depth(), 3);
        assert_eq!(n.count_cells(CellType::Or2), 6);
    }

    #[test]
    fn and_tree_handles_single_input() {
        let mut b = NetlistBuilder::new("and1");
        let a = b.input("a");
        let out = b.and_tree(&[a]);
        b.output("out", out);
        let n = b.build().unwrap();
        assert_eq!(n.logical_depth(), 0);
        assert_eq!(n.gates().len(), 0);
    }

    #[test]
    fn unbalanced_circuit_is_detected() {
        let mut b = NetlistBuilder::new("unbalanced");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        // `x` is level 1, `a` is level 0: this OR has unbalanced fan-ins.
        let y = b.or2(x, a);
        b.output("y", y);
        let n = b.build().unwrap();
        assert!(!n.is_path_balanced());
    }

    #[test]
    fn balanced_circuit_is_detected() {
        let mut b = NetlistBuilder::new("balanced");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let a_delayed = b.dff(a);
        let y = b.or2(x, a_delayed);
        b.output("y", y);
        let n = b.build().unwrap();
        assert!(n.is_path_balanced());
    }

    #[test]
    fn port_lookup_by_name() {
        let n = small_circuit();
        assert!(n.input_net("a").is_some());
        assert!(n.input_net("missing").is_none());
        assert!(n.output_net("y").is_some());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let _ = b.gate(CellType::And2, &[a]);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(NetId(4).to_string(), "n4");
        assert_eq!(GateId(2).index(), 2);
    }
}
