//! Cycle-accurate simulation of clocked SFQ netlists.
//!
//! SFQ gates are pulse-based and clocked: "we do not need to have flip-flops
//! and signals can propagate one SFQ gate at each cycle" (Section VI-A).  The
//! simulator models exactly that — on every clock cycle each gate consumes the
//! values its fan-ins held during the *previous* cycle and produces a new
//! output pulse (or absence of one).  It is used to verify the logical
//! behaviour of the decoder-module sub-circuits before they are assembled
//! into the mesh.

use crate::cell::CellType;
use crate::netlist::Netlist;
use std::collections::HashMap;

/// A cycle-accurate simulator for one netlist instance.
#[derive(Debug, Clone)]
pub struct NetlistSimulator<'a> {
    netlist: &'a Netlist,
    /// Current value of every net (pulse present this cycle).
    values: Vec<bool>,
    cycle: u64,
}

impl<'a> NetlistSimulator<'a> {
    /// Creates a simulator with all nets initially carrying no pulses.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        NetlistSimulator {
            netlist,
            values: vec![false; netlist.num_nets()],
            cycle: 0,
        }
    }

    /// The number of clock cycles simulated so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all nets to the no-pulse state.
    pub fn reset(&mut self) {
        self.values.fill(false);
        self.cycle = 0;
    }

    /// Advances the circuit by one clock cycle.
    ///
    /// `inputs` maps primary-input names to the pulse applied this cycle;
    /// unnamed inputs default to `false`.  Returns the values of all primary
    /// outputs after the clock edge.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` names a port that does not exist.
    pub fn step(&mut self, inputs: &HashMap<&str, bool>) -> HashMap<String, bool> {
        // Apply primary inputs for this cycle: the pulses are present on the
        // input nets while this cycle's first-level gates fire.
        let mut snapshot = self.values.clone();
        for port in self.netlist.inputs() {
            snapshot[port.net.index()] = false;
        }
        for (&name, &value) in inputs {
            let net = self
                .netlist
                .input_net(name)
                .unwrap_or_else(|| panic!("no primary input named {name}"));
            snapshot[net.index()] = value;
        }
        // Every gate consumes the values its fan-ins held at the start of the
        // cycle, so pulses advance exactly one gate level per clock.
        let mut next = snapshot.clone();
        for gate in self.netlist.gates() {
            let in_values: Vec<bool> = gate.inputs.iter().map(|n| snapshot[n.index()]).collect();
            next[gate.output.index()] = gate.cell.evaluate(&in_values);
        }
        self.values = next;
        self.cycle += 1;
        self.outputs()
    }

    /// Runs the circuit for `cycles` cycles with constant inputs, returning
    /// the outputs observed after the final cycle.
    pub fn run(&mut self, inputs: &HashMap<&str, bool>, cycles: usize) -> HashMap<String, bool> {
        let mut out = self.outputs();
        for _ in 0..cycles {
            out = self.step(inputs);
        }
        out
    }

    /// The current value of every primary output.
    #[must_use]
    pub fn outputs(&self) -> HashMap<String, bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|p| (p.name.clone(), self.values[p.net.index()]))
            .collect()
    }

    /// The current value of an arbitrary net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn net_value(&self, net: crate::netlist::NetId) -> bool {
        self.values[net.index()]
    }

    /// Number of cycles needed for a pulse to traverse the circuit: equal to
    /// the logical depth because each clocked cell adds one cycle.
    #[must_use]
    pub fn pipeline_latency_cycles(&self) -> usize {
        self.netlist.logical_depth()
    }

    /// Counts the gates whose output currently carries a pulse — a proxy for
    /// switching activity used in dynamic-power discussions.
    #[must_use]
    pub fn active_gate_count(&self) -> usize {
        self.netlist
            .gates()
            .iter()
            .filter(|g| self.values[g.output.index()])
            .count()
    }

    /// Counts flip-flops currently holding a pulse.
    #[must_use]
    pub fn active_dff_count(&self) -> usize {
        self.netlist
            .gates()
            .iter()
            .filter(|g| g.cell == CellType::DroDff && self.values[g.output.index()])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::synth::path_balance;

    fn and_or_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("and-or");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.and2(a, c);
        let d_delayed = b.dff(d);
        let y = b.or2(x, d_delayed);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn values_propagate_one_level_per_cycle() {
        let n = and_or_circuit();
        let mut sim = NetlistSimulator::new(&n);
        let inputs: HashMap<&str, bool> = [("a", true), ("b", true), ("c", false)].into();
        // After one cycle only the first-level gates have seen the inputs.
        let out1 = sim.step(&inputs);
        assert!(!out1["y"]);
        // After two cycles the pulse has reached the output.
        let out2 = sim.step(&inputs);
        assert!(out2["y"]);
        assert_eq!(sim.cycle(), 2);
        assert_eq!(sim.pipeline_latency_cycles(), 2);
    }

    #[test]
    fn or_path_through_dff_also_works() {
        let n = and_or_circuit();
        let mut sim = NetlistSimulator::new(&n);
        let inputs: HashMap<&str, bool> = [("a", false), ("b", false), ("c", true)].into();
        sim.step(&inputs);
        let out = sim.step(&inputs);
        assert!(out["y"]);
    }

    #[test]
    fn reset_clears_state() {
        let n = and_or_circuit();
        let mut sim = NetlistSimulator::new(&n);
        let inputs: HashMap<&str, bool> = [("a", true), ("b", true), ("c", true)].into();
        sim.run(&inputs, 3);
        assert!(sim.active_gate_count() > 0);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.active_gate_count(), 0);
        assert_eq!(sim.active_dff_count(), 0);
        assert!(!sim.outputs()["y"]);
    }

    #[test]
    fn pulse_train_fills_the_pipeline() {
        // A constant "1" input produces a constant "1" output once the
        // pipeline is full, exactly like a hot-syndrome module continuously
        // emitting grow pulses.
        let n = and_or_circuit();
        let balanced = path_balance(&n);
        let mut sim = NetlistSimulator::new(&balanced);
        let inputs: HashMap<&str, bool> = [("a", true), ("b", true), ("c", false)].into();
        let depth = balanced.logical_depth();
        for cycle in 1..=depth + 3 {
            let out = sim.step(&inputs);
            if cycle >= depth {
                assert!(out["y"], "output should be high from cycle {depth} onwards");
            }
        }
    }

    #[test]
    fn single_pulse_travels_and_leaves() {
        let n = and_or_circuit();
        let mut sim = NetlistSimulator::new(&n);
        let pulse: HashMap<&str, bool> = [("a", true), ("b", true), ("c", false)].into();
        let quiet: HashMap<&str, bool> = [("a", false), ("b", false), ("c", false)].into();
        sim.step(&pulse);
        let out = sim.step(&quiet);
        assert!(out["y"], "the pulse injected on cycle 1 arrives on cycle 2");
        let out = sim.step(&quiet);
        assert!(!out["y"], "with no new pulses the output goes quiet again");
    }

    #[test]
    #[should_panic(expected = "no primary input named")]
    fn unknown_input_panics() {
        let n = and_or_circuit();
        let mut sim = NetlistSimulator::new(&n);
        let inputs: HashMap<&str, bool> = [("nope", true)].into();
        sim.step(&inputs);
    }
}
