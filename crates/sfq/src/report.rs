//! Mesh-level and refrigerator-budget reports (the Section VIII feasibility
//! analysis).
//!
//! The full decoder is a mesh of identical modules — one per physical qubit —
//! so its area and power scale linearly with the qubit count.  The paper's
//! numbers: a single module occupies 1.28 mm² and dissipates 13.1 µW; a
//! distance-9 patch (289 qubits) therefore needs 369.72 mm² and 3.78 mW,
//! and a typical dilution refrigerator with 1–2 W of cooling power at the
//! 4 K stage can host a mesh of roughly 87 × 87 modules.

use crate::synth::SynthesisReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Characterisation of a single circuit block in convenient units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitCharacterization {
    /// Logical depth in clocked levels.
    pub logical_depth: usize,
    /// Latency in picoseconds.
    pub latency_ps: f64,
    /// Area in square millimetres.
    pub area_mm2: f64,
    /// Power in microwatts.
    pub power_uw: f64,
    /// Josephson-junction count.
    pub jj_count: u64,
}

impl From<&SynthesisReport> for CircuitCharacterization {
    fn from(report: &SynthesisReport) -> Self {
        CircuitCharacterization {
            logical_depth: report.logical_depth,
            latency_ps: report.latency_ps,
            area_mm2: report.area_um2 * 1e-6,
            power_uw: report.power_uw,
            jj_count: report.jj_count,
        }
    }
}

/// The cryogenic cooling budget available to the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefrigeratorBudget {
    /// Cooling power available at the 4 K stage, in watts.
    pub cooling_power_w: f64,
    /// Usable area at the 4 K stage, in square millimetres.
    pub area_mm2: f64,
}

impl RefrigeratorBudget {
    /// A typical contemporary dilution refrigerator: 1 W of cooling at 4 K
    /// (conservative end of the paper's 1–2 W range) and a 100 mm x 100 mm
    /// mounting plate for the decoder stack.
    #[must_use]
    pub fn typical() -> Self {
        RefrigeratorBudget {
            cooling_power_w: 1.0,
            area_mm2: 10_000.0,
        }
    }

    /// The generous end of the paper's range: 2 W of cooling at 4 K and twice
    /// the mounting area.
    #[must_use]
    pub fn generous() -> Self {
        RefrigeratorBudget {
            cooling_power_w: 2.0,
            area_mm2: 20_000.0,
        }
    }
}

impl Default for RefrigeratorBudget {
    fn default() -> Self {
        RefrigeratorBudget::typical()
    }
}

/// Area/power scaling of a full decoder mesh built from one module per qubit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshReport {
    /// Number of modules on one side of the (square) mesh.
    pub side: usize,
    /// Total number of modules.
    pub modules: usize,
    /// Total area in square millimetres.
    pub area_mm2: f64,
    /// Total power in milliwatts.
    pub power_mw: f64,
}

impl MeshReport {
    /// Builds the report for a `side x side` mesh of the given module.
    #[must_use]
    pub fn for_mesh(module: CircuitCharacterization, side: usize) -> Self {
        let modules = side * side;
        MeshReport {
            side,
            modules,
            area_mm2: module.area_mm2 * modules as f64,
            power_mw: module.power_uw * modules as f64 * 1e-3,
        }
    }

    /// Builds the report for the mesh protecting a single code-distance-`d`
    /// surface-code patch: one module per physical qubit, i.e. a
    /// `(2d-1) x (2d-1)` mesh.
    #[must_use]
    pub fn for_code_distance(module: CircuitCharacterization, distance: usize) -> Self {
        MeshReport::for_mesh(module, 2 * distance - 1)
    }

    /// Returns `true` if the mesh fits in the given refrigerator budget.
    #[must_use]
    pub fn fits(&self, budget: &RefrigeratorBudget) -> bool {
        self.power_mw * 1e-3 <= budget.cooling_power_w && self.area_mm2 <= budget.area_mm2
    }
}

impl fmt::Display for MeshReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} mesh ({} modules): {:.2} mm^2, {:.2} mW",
            self.side, self.side, self.modules, self.area_mm2, self.power_mw
        )
    }
}

/// The largest square mesh that fits both the power and the area budget.
#[must_use]
pub fn max_mesh_side(module: CircuitCharacterization, budget: &RefrigeratorBudget) -> usize {
    let per_module_w = module.power_uw * 1e-6;
    if per_module_w <= 0.0 || module.area_mm2 <= 0.0 {
        return 0;
    }
    let by_power = (budget.cooling_power_w / per_module_w).floor();
    let by_area = (budget.area_mm2 / module.area_mm2).floor();
    by_power.min(by_area).max(0.0).sqrt().floor() as usize
}

/// The code distance a `side x side` mesh can protect for one logical qubit
/// (the inverse of `2d - 1 = side`).
#[must_use]
pub fn protected_distance(side: usize) -> usize {
    side.div_ceil(2)
}

/// How many logical qubits of code distance `d` fit in a mesh with the given
/// number of modules (one module per physical qubit, `(2d-1)^2` per patch).
#[must_use]
pub fn logical_qubits_supported(total_modules: usize, distance: usize) -> usize {
    let per_patch = (2 * distance - 1) * (2 * distance - 1);
    total_modules / per_patch
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The module characterisation reported in Table III of the paper.
    fn paper_module() -> CircuitCharacterization {
        CircuitCharacterization {
            logical_depth: 6,
            latency_ps: 162.72,
            area_mm2: 1.279_32,
            power_uw: 13.08,
            jj_count: 4000,
        }
    }

    #[test]
    fn distance_nine_mesh_matches_paper_numbers() {
        let report = MeshReport::for_code_distance(paper_module(), 9);
        assert_eq!(report.modules, 289);
        // Paper: 369.72 mm^2 and 3.78 mW for 289 modules.
        assert!(
            (report.area_mm2 - 369.72).abs() < 0.5,
            "area {}",
            report.area_mm2
        );
        assert!(
            (report.power_mw - 3.78).abs() < 0.05,
            "power {}",
            report.power_mw
        );
    }

    #[test]
    fn mesh_of_87_fits_one_watt_budget() {
        // Paper: a 1-2 W budget permits an 87x87 mesh.
        let module = paper_module();
        let side = max_mesh_side(module, &RefrigeratorBudget::typical());
        assert!((85..=90).contains(&side), "side {side}");
        let report = MeshReport::for_mesh(module, side);
        assert!(report.fits(&RefrigeratorBudget::generous()));
        // Such a mesh protects a single logical qubit of distance ~44.
        assert!((42..=45).contains(&protected_distance(side)));
    }

    #[test]
    fn logical_qubit_packing() {
        // Paper: the 87x87 mesh can alternatively protect ~100 qubits at d=5.
        let total = 87 * 87;
        let at_d5 = logical_qubits_supported(total, 5);
        assert!((90..=95).contains(&at_d5), "d=5 packing {at_d5}");
        assert_eq!(logical_qubits_supported(289, 9), 1);
        assert_eq!(logical_qubits_supported(288, 9), 0);
    }

    #[test]
    fn fits_checks_both_power_and_area() {
        let module = paper_module();
        let small = MeshReport::for_mesh(module, 3);
        assert!(small.fits(&RefrigeratorBudget::typical()));
        let huge = MeshReport::for_mesh(module, 500);
        assert!(!huge.fits(&RefrigeratorBudget::generous()));
        assert!(small.to_string().contains("3x3"));
    }

    #[test]
    fn characterization_from_synthesis_report() {
        let report = SynthesisReport {
            name: "x".into(),
            logical_depth: 5,
            latency_ps: 96.0,
            area_um2: 347_760.0,
            jj_count: 1000,
            power_uw: 3.51,
            cell_counts: vec![],
            balancing_dffs: 0,
        };
        let ch = CircuitCharacterization::from(&report);
        assert_eq!(ch.logical_depth, 5);
        assert!((ch.area_mm2 - 0.347_76).abs() < 1e-9);
        assert_eq!(ch.jj_count, 1000);
    }

    #[test]
    fn budget_constructors() {
        assert!(
            RefrigeratorBudget::generous().cooling_power_w
                > RefrigeratorBudget::typical().cooling_power_w
        );
        assert_eq!(RefrigeratorBudget::default(), RefrigeratorBudget::typical());
    }

    #[test]
    fn zero_power_module_gives_zero_mesh() {
        let module = CircuitCharacterization {
            logical_depth: 0,
            latency_ps: 0.0,
            area_mm2: 0.0,
            power_uw: 0.0,
            jj_count: 0,
        };
        assert_eq!(max_mesh_side(module, &RefrigeratorBudget::typical()), 0);
    }
}
