//! Property-based tests for the SFQ netlist and synthesis machinery.

use nisqplus_sfq::cell::{CellLibrary, CellType};
use nisqplus_sfq::netlist::{NetId, NetlistBuilder};
use nisqplus_sfq::synth::{path_balance, synthesize};
use proptest::prelude::*;

/// Builds a random layered netlist from a compact recipe: each entry picks a
/// cell type and two (wrapped) indices into the list of already-available
/// nets.
fn build_random_netlist(num_inputs: usize, recipe: &[(u8, usize, usize)]) -> nisqplus_sfq::Netlist {
    let mut builder = NetlistBuilder::new("random");
    let mut nets: Vec<NetId> = (0..num_inputs)
        .map(|i| builder.input(format!("i{i}")))
        .collect();
    for &(cell, a, b) in recipe {
        let x = nets[a % nets.len()];
        let y = nets[b % nets.len()];
        let out = match cell % 4 {
            0 => builder.and2(x, y),
            1 => builder.or2(x, y),
            2 => builder.xor2(x, y),
            _ => builder.not(x),
        };
        nets.push(out);
    }
    let last = *nets.last().unwrap();
    builder.output("out", last);
    // Also expose a second output from the middle of the circuit so that
    // output balancing is exercised.
    builder.output("mid", nets[nets.len() / 2]);
    builder.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Path balancing always establishes full path balance, never changes the
    /// logical depth, and never removes logic gates.
    #[test]
    fn path_balancing_invariants(
        num_inputs in 2usize..6,
        recipe in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..24),
    ) {
        let netlist = build_random_netlist(num_inputs, &recipe);
        let balanced = path_balance(&netlist);
        prop_assert!(balanced.is_path_balanced());
        prop_assert_eq!(balanced.logical_depth(), netlist.logical_depth());
        for cell in [CellType::And2, CellType::Or2, CellType::Xor2, CellType::Not] {
            prop_assert_eq!(balanced.count_cells(cell), netlist.count_cells(cell));
        }
        prop_assert!(balanced.count_cells(CellType::DroDff) >= netlist.count_cells(CellType::DroDff));
    }

    /// Synthesis totals are consistent: area, JJ count and power all equal the
    /// sum over the reported per-cell counts.
    #[test]
    fn synthesis_totals_are_sums_over_cells(
        num_inputs in 2usize..5,
        recipe in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..16),
    ) {
        let library = CellLibrary::ersfq();
        let netlist = build_random_netlist(num_inputs, &recipe);
        let report = synthesize(&netlist, &library);
        let mut area = 0.0;
        let mut jj = 0u64;
        let mut power = 0.0;
        for &(cell, count) in &report.cell_counts {
            let spec = library.spec(cell);
            area += spec.area_um2 * count as f64;
            jj += u64::from(spec.jj_count) * count as u64;
            power += spec.power_uw * count as f64;
        }
        prop_assert!((report.area_um2 - area).abs() < 1e-6);
        prop_assert_eq!(report.jj_count, jj);
        prop_assert!((report.power_uw - power).abs() < 1e-9);
        // Latency is bounded by depth * (slowest cell + overhead).
        let max_stage = 9.2 + library.stage_overhead_ps();
        prop_assert!(report.latency_ps <= report.logical_depth as f64 * max_stage + 1e-9);
    }
}
