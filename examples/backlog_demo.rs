//! The motivation experiment of Section III: run the Table I benchmarks
//! against a fast online decoder and a slow offline decoder and watch the
//! exponential wall-clock blow-up (and its effect on the Simple Quantum
//! Volume).
//!
//! Run with `cargo run --example backlog_demo`.

use nisqplus_system::backlog::{BacklogModel, BacklogSimulation};
use nisqplus_system::sqv::{data_qubits_per_logical, ScalingModel, SqvAnalysis};
use nisqplus_system::standard_benchmarks;

fn main() {
    let syndrome_cycle_ns = BacklogModel::DEFAULT_SYNDROME_CYCLE_NS;
    // The SFQ mesh decoder finishes in at most ~20 ns per round; a software
    // decoder behind a cryostat link takes ~800 ns.
    let online = BacklogModel::new(syndrome_cycle_ns, 20.0);
    let offline = BacklogModel::new(syndrome_cycle_ns, 800.0);

    println!(
        "decoding ratios: online f = {:.3}, offline f = {:.1}",
        online.ratio(),
        offline.ratio()
    );
    println!();
    println!(
        "{:<30} {:>10} {:>18} {:>18}",
        "benchmark", "T gates", "online wall clock", "offline wall clock"
    );
    for bench in standard_benchmarks() {
        let fast = BacklogSimulation::new(online).run(&bench);
        let slow = BacklogSimulation::new(offline).run(&bench);
        println!(
            "{:<30} {:>10} {:>16.2} ms {:>18}",
            bench.name(),
            bench.t_gates(),
            fast.wall_clock_s * 1e3,
            if slow.wall_clock_s.is_finite() {
                format!("{:.2e} s", slow.wall_clock_s)
            } else {
                "overflow".to_string()
            }
        );
    }

    println!();
    println!("Effect on the Simple Quantum Volume of a 1,024-qubit machine at p = 1e-5:");
    let analysis = SqvAnalysis::near_term_machine();
    let physical = analysis.physical_machine();
    let encoded =
        analysis.encoded_machine(3, &ScalingModel::sfq_paper(3), data_qubits_per_logical(3));
    println!("  bare physical machine:        SQV = {:.2e}", physical.sqv);
    println!(
        "  with online AQEC at d=3:      SQV = {:.2e} ({:.0}x the 1e5 NISQ target)",
        encoded.sqv,
        analysis.boost_factor(&encoded)
    );
    println!(
        "  with a backlogged decoder the machine spends its lifetime idle, so none of that \
         volume is usable."
    );
}
