//! Chaos demo: one run that survives a worker crash, a poisoned wire
//! record, a burst-noise episode, and a stalled credit channel — and can
//! prove, frame by frame, that nothing protected was lost.
//!
//! A three-lattice machine under a seeded [`FaultPlan`]:
//!
//! * lattice 0 (d=5, `Block`) — the protected patch; it must come through
//!   the chaos byte-identical to a fault-free reference run,
//! * lattice 1 (d=3, `Drop`) — the corruption target: round 5's encoded
//!   record gets one bit flipped on the wire.  The worker quarantines the
//!   undecodable record, the producer sheds the round, and the frame covers
//!   it with an identity correction,
//! * lattice 2 (d=3, `Block`) — the burst target: rounds 40..60 run at 8x
//!   the base dephasing rate.  The burst is part of the stream's seeded
//!   identity, so the reference run replays the *same* burst and the frames
//!   still match exactly.
//!
//! On top of that, worker 0 is killed (an injected panic) after its tenth
//! committed round — the supervisor catches the unwind, re-prepares the
//! decoders, and the replacement adopts the dead worker's frame shard — and
//! channel 0 refuses sends for 2 ms starting at machine emission 50,
//! exercising the backpressure path without tripping the watchdog.
//!
//! The assertions at the bottom are the acceptance criteria: the run ends
//! (no hang), no panic escapes (exit code 0), both `Block` lattices end
//! `BOUNDED` with zero lost rounds and merged Pauli frames byte-identical
//! to the reference, exactly one round is quarantined, and the final
//! [`FaultReport`] reconciles injected faults against observed recoveries.
//!
//! Run with `cargo run --release --example chaos_runtime`.  The fault
//! taxonomy and every `fault:` report field are documented in
//! `docs/OPERATIONS.md`.

use nisqplus_decoders::{DynDecoder, UnionFindDecoder};
use nisqplus_runtime::{
    fault::silence_injected_crash_panics, BurstOverlay, FaultPlan, LatticeSpec, MachineConfig,
    NoiseSpec, PushPolicy, RuntimeConfig, RuntimeOutcome, StreamingEngine,
};

/// Rounds streamed per lattice.
const ROUNDS: u64 = 300;

/// Per-lattice syndrome-generation period: the paper's 400 ns scaled by
/// 250x (~100 us) so the decoders keep up and the Block lattices can end
/// the run BOUNDED — the chaos, not the clock, is what's under test.
const CADENCE_CYCLES: usize = RuntimeConfig::PAPER_CADENCE_CYCLES * 250;

/// The burst episode injected into lattice 2: rounds 40..60 at 8x noise.
const BURST: BurstOverlay = BurstOverlay {
    start_round: 40,
    rounds: 20,
    factor: 8.0,
};

/// Builds the three-lattice machine; `plan` is the only difference between
/// the chaos run and the fault-free reference.
fn machine(plan: FaultPlan) -> MachineConfig {
    let spec = |distance: usize, seed: u64| {
        LatticeSpec::new(distance)
            .with_noise(NoiseSpec::PureDephasing { p: 0.02 })
            .with_seed(seed)
            .with_rounds(ROUNDS)
            .with_cadence_cycles(CADENCE_CYCLES)
    };
    let mut config = MachineConfig::new(&[5, 3, 3], 9000);
    config.lattices = vec![
        spec(5, 9000).with_push_policy(PushPolicy::Block),
        spec(3, 9001).with_push_policy(PushPolicy::Drop),
        spec(3, 9002).with_push_policy(PushPolicy::Block),
    ];
    config.workers = 2;
    config.queue_capacity = 4_096;
    config.push_policy = PushPolicy::Block;
    config.fault = plan;
    config
}

fn run(plan: FaultPlan) -> RuntimeOutcome {
    let engine = StreamingEngine::with_machine(machine(plan)).expect("valid config");
    engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder)
}

fn main() {
    // The injected crash is a real panic; keep its backtrace out of stderr
    // so the only panics this process prints are unexpected ones.
    silence_injected_crash_panics();

    let chaos_plan = FaultPlan::default()
        .crash_worker(0, 10) // kill worker 0 after 10 committed rounds
        .corrupt_record(1, 5, 2, 13) // flip bit 13 of word 2, lattice 1 round 5
        .burst(2, BURST) // 8x noise on lattice 2, rounds 40..60
        .stall_channel(0, 50, 2_000_000); // channel 0 dead for 2 ms
                                          // The burst is stream content, not a failure: the reference replays it,
                                          // so the burst lattice's frames are comparable byte for byte.
    let reference_plan = FaultPlan::default().burst(2, BURST);

    println!(
        "chaos run: 3 lattices (d=5 Block, d=3 Drop, d=3 Block) x {ROUNDS} rounds on 2 workers"
    );
    println!("  plan: kill worker 0 after 10 decodes; poison lattice 1 round 5 on the wire;");
    println!("        8x burst on lattice 2 rounds 40..60; stall channel 0 for 2 ms");
    println!();
    let chaos = run(chaos_plan);
    println!("{}", chaos.report);
    println!();
    let reference = run(reference_plan);

    let report = &chaos.report;
    let fault = &report.fault;

    // --- The run survived: crash caught, worker restarted, nothing hung. -
    assert!(fault.enabled, "the chaos run carried a plan");
    assert_eq!(fault.injected_crashes, 1);
    assert_eq!(fault.observed_crashes, 1, "the supervisor saw the crash");
    assert_eq!(fault.worker_restarts, 1, "and restarted the worker");
    assert_eq!(report.journal.counts.worker_crash, 1);
    assert_eq!(report.journal.counts.worker_restart, 1);

    // --- The poisoned record was quarantined, not decoded, not fatal. ----
    assert_eq!(fault.injected_corruptions, 1);
    assert_eq!(fault.quarantined, 1, "the worker rejected the record");
    assert_eq!(report.counters.quarantined, 1);
    assert_eq!(report.journal.counts.quarantine, 1);

    // --- The burst ran its exact window; the stall armed and released. ---
    assert_eq!(fault.planned_bursts, 1);
    assert_eq!(fault.bursts_started, 1);
    assert_eq!(fault.bursts_ended, 1);
    assert_eq!(fault.injected_stalls, 1);
    assert_eq!(
        fault.watchdog_trips, 0,
        "a 2 ms stall must ride out on backpressure, far below the watchdog"
    );
    assert!(!fault.degraded, "no forced shedding means not degraded");

    // --- The books balance: injected == observed == recovered. -----------
    assert!(
        fault.reconciled(),
        "the fault report must reconcile: {fault}"
    );

    // --- Both Block lattices lost nothing and stayed bounded. ------------
    for &id in &[0usize, 2] {
        let lattice = &report.lattices[id];
        assert_eq!(lattice.counters.decoded, ROUNDS, "lattice {id} decoded all");
        assert_eq!(lattice.counters.dropped, 0, "lattice {id} shed nothing");
        assert_eq!(lattice.verdict(), "BOUNDED", "lattice {id} stayed bounded");
    }

    // --- The Drop lattice lost exactly the poisoned round. ---------------
    let poisoned = &report.lattices[1];
    assert_eq!(poisoned.counters.decoded, ROUNDS - 1);
    assert_eq!(poisoned.counters.dropped, 1, "only the poisoned round");
    assert_eq!(
        chaos.frame_for(1).total_recorded(),
        ROUNDS,
        "the quarantined round enters the frame as an identity correction"
    );

    // --- Recovery is exact: protected frames match the reference. --------
    assert_eq!(reference.report.counters.dropped, 0);
    assert!(reference.report.fault.reconciled());
    for &id in &[0usize, 2] {
        assert_eq!(
            chaos.frame_for(id).merged(),
            reference.frame_for(id).merged(),
            "lattice {id}'s merged Pauli frame must be byte-identical to the fault-free run"
        );
    }

    println!(
        "survived: crash caught+restarted ({} restart), 1 record quarantined, burst {}..{} \
         replayed, 2 ms stall absorbed ({} watchdog trips)",
        fault.worker_restarts,
        BURST.start_round,
        BURST.end_round(),
        fault.watchdog_trips
    );
    println!(
        "recovery is exact: lattices 0 and 2 decoded {ROUNDS}/{ROUNDS} rounds BOUNDED with \
         merged frames byte-identical to the fault-free reference; fault books reconciled."
    );
}
