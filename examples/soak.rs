//! The soak driver: one sustained multi-lattice streaming run at machine
//! scale, emitting the repo-root `BENCH_soak.json` perf artifact.
//!
//! ```text
//! cargo run --release --example soak                 # full: 1M rounds, 100 lattices
//! NISQ_SOAK_SMOKE=1 cargo run --release --example soak   # CI smoke: 50k rounds, 16 lattices
//! NISQ_SOAK_ROUNDS=200000 NISQ_SOAK_LATTICES=32 cargo run --release --example soak
//! ```
//!
//! The full profile mixes distances (3/5/7) and QoS classes (blocking
//! backpressure, load-shedding Drop lanes, one deliberately throttled lane),
//! classifies every round's residual *in stream* — memory stays
//! O(lattices), not O(rounds) — and asserts conservation (every generated
//! round decoded or shed) per lattice before writing the artifact.  The
//! smoke profile additionally demands every verdict come back `BOUNDED`.
//! See `nisqplus_bench::soak` for the harness itself and
//! `docs/OPERATIONS.md` ("Running a soak") for the operator's guide.

fn main() {
    let (profile, outcome, entries) = nisqplus_bench::soak::run_and_emit();
    let report = &outcome.report;
    println!(
        "soak {}: {} lattices d={:?} | {} workers | {} rounds in {:.2} s ({:.0} rounds/s)",
        if profile.smoke { "smoke" } else { "full" },
        report.num_lattices,
        report.distances,
        report.workers,
        report.counters.generated,
        report.elapsed_s,
        report.throughput_per_s,
    );
    println!(
        "  decoded {} | shed {} ({:.3}%) | verdict {}",
        report.counters.decoded,
        report.counters.dropped,
        100.0 * report.counters.dropped as f64 / report.counters.generated.max(1) as f64,
        report.verdict(),
    );
    for entry in &entries {
        println!(
            "  {:<22} p99 decode {:>9.0} ns | p99 e2e {:>10.0} ns | shed {:>6.3}% | residual fail {:>6.4}% | {}",
            entry.id,
            entry.decode_p99_ns,
            entry.total_p99_ns,
            100.0 * entry.shed_rate,
            100.0 * entry.residual_failure_rate,
            entry.verdict,
        );
    }
    let rss = nisqplus_bench::soak::peak_rss_bytes();
    if rss > 0 {
        println!("  peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    println!("soak: all invariants held (conservation, tally agreement, verdict gate)");
}
