//! Synthesize the decoder-module sub-circuits into the ERSFQ cell library and
//! check that a full decoder mesh fits the cryogenic budget.
//!
//! Run with `cargo run --example sfq_synthesis`.

use nisqplus_core::{DecoderModuleHardware, ModuleSubcircuit};
use nisqplus_sfq::report::RefrigeratorBudget;
use nisqplus_system::cooling_feasibility;

fn main() {
    let hardware = DecoderModuleHardware::ersfq();
    println!("ERSFQ synthesis of the decoder module (one module per physical qubit):");
    println!();
    println!(
        "{:<28} {:>6} {:>12} {:>14} {:>10} {:>8}",
        "sub-circuit", "depth", "latency (ps)", "area (um^2)", "power (uW)", "JJs"
    );
    for (which, report) in hardware.reports() {
        println!(
            "{:<28} {:>6} {:>12.2} {:>14.0} {:>10.3} {:>8}",
            which.to_string(),
            report.logical_depth,
            report.latency_ps,
            report.area_um2,
            report.power_uw,
            report.jj_count
        );
    }
    println!();
    println!(
        "mesh cycle time: {:.2} ps (paper: 162.72 ps); worst-case decode of ~120 cycles at d=9 \
         is ~{:.1} ns, well below the 400 ns syndrome cycle",
        hardware.cycle_time_ps(),
        120.0 * hardware.cycle_time_ps() * 1e-3
    );
    println!();

    let full = hardware.report(ModuleSubcircuit::FullModule);
    println!(
        "single module: {:.3} mm^2 and {:.2} uW -> a d=9 patch (289 modules) needs {:.1} mm^2 \
         and {:.2} mW",
        full.area_um2 * 1e-6,
        full.power_uw,
        hardware.mesh_for_distance(9).area_mm2,
        hardware.mesh_for_distance(9).power_mw
    );
    for (label, budget) in [
        ("1 W / 100 cm^2", RefrigeratorBudget::typical()),
        ("2 W / 200 cm^2", RefrigeratorBudget::generous()),
    ] {
        let report = cooling_feasibility(&hardware, 9, &budget);
        println!(
            "budget {label}: d=9 mesh fits = {}, max mesh {}x{} (one logical qubit at d={}, or {} \
             logical qubits at d=5)",
            report.patch_fits,
            report.max_mesh_side,
            report.max_mesh_side,
            report.max_protected_distance,
            report.logical_qubits_at_d5
        );
    }
}
