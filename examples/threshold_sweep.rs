//! Compare the approximate SFQ mesh decoder against the software baselines
//! (exact matching / MWPM and union-find) on a small threshold sweep.
//!
//! Run with `cargo run --release --example threshold_sweep`.

use nisqplus_core::DecoderVariant;
use nisqplus_decoders::{ExactMatchingDecoder, UnionFindDecoder};
use nisqplus_qec::error_model::PureDephasing;
use nisqplus_qec::lattice::Lattice;
use nisqplus_sim::monte_carlo::{run_lifetime, run_sfq_lifetime, MonteCarloConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 2_000;
    let physical_rates = [0.01, 0.02, 0.03, 0.04, 0.05];
    let distances = [3usize, 5, 7];

    println!("logical error rates (%) from {trials} trials per point, pure dephasing noise");
    println!();
    println!(
        "{:>6} {:>4} {:>12} {:>12} {:>12}",
        "p (%)", "d", "sfq-mesh", "mwpm", "union-find"
    );
    for &p in &physical_rates {
        for &d in &distances {
            let lattice = Lattice::new(d)?;
            let model = PureDephasing::new(p)?;
            let config = MonteCarloConfig::new(trials).with_seed(0xE0 + d as u64);

            let sfq = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
            let mwpm = run_lifetime(&lattice, &model, &config, ExactMatchingDecoder::new, |_| {
                None
            });
            let uf = run_lifetime(&lattice, &model, &config, UnionFindDecoder::new, |_| None);

            println!(
                "{:>6.1} {:>4} {:>12.3} {:>12.3} {:>12.3}",
                p * 100.0,
                d,
                sfq.logical_error_rate() * 100.0,
                mwpm.logical_error_rate() * 100.0,
                uf.logical_error_rate() * 100.0
            );
        }
        println!();
    }
    println!(
        "The approximate hardware decoder gives up some accuracy relative to MWPM and \
         union-find — that is the price it pays for decoding in ~20 ns instead of hundreds of \
         nanoseconds (or worse), which is what keeps the machine free of decoding backlog."
    );
    Ok(())
}
