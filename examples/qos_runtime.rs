//! Per-lattice QoS demo: what load shedding costs, measured per patch.
//!
//! A four-lattice machine under deliberate overload of its d=5 distance
//! class:
//!
//! * lattice 0 (d=5, `Drop`, queue budget 4, shed SLO 10%) — a best-effort
//!   patch that sheds rounds instead of queueing them,
//! * lattice 1 (d=5, `Block`) — a protected patch with the same stream
//!   shape: it never loses a round and its backlog GROWS instead,
//! * lattices 2 and 3 (d=3) — fast patches served by their own
//!   `LookupDecoder` factory (heterogeneous decoder assignment).  They stay
//!   lossless, but because rings are shared FIFO their rounds queue behind
//!   throttled d=5 rounds — the head-of-line coupling the report makes
//!   visible (and ROADMAP's lattice-affinity placement item would remove).
//!
//! The run enables the end-of-run residual analysis, so the report prices
//! the two contracts in *measured logical failures*: shed rounds enter the
//! per-lattice frame as identity corrections and their residuals are
//! classified against the replayed seeded error stream.  The assertions at
//! the bottom are the acceptance criteria: nonzero shed rate and measured
//! residual failure rate on the Drop patch, zero shed on the Block patch,
//! and a strictly higher failure rate under shedding than under
//! backpressure.  The event journal must tell the same story: one `shed`
//! event per dropped round (the totals reconcile exactly with the
//! counters) and `budget_exhausted` warnings from the Drop lane.
//!
//! Run with `cargo run --release --example qos_runtime`.  Every line of the
//! printed report is documented in `docs/OPERATIONS.md`.

use nisqplus_decoders::{DynDecoder, LookupDecoder, SharedDecoderFactory, UnionFindDecoder};
use nisqplus_qec::lattice::Lattice;
use nisqplus_runtime::{
    LatticeSpec, MachineConfig, NoiseSpec, PushPolicy, RuntimeConfig, StreamingEngine,
    ThrottledDecoder,
};
use std::sync::Arc;

/// Rounds streamed per lattice.
const ROUNDS: u64 = 400;

/// Per-lattice syndrome-generation period: the paper's 400 ns scaled by
/// 250x (~100 us) so a single shared core can host producer and workers.
const CADENCE_CYCLES: usize = RuntimeConfig::PAPER_CADENCE_CYCLES * 250;

/// Wall-clock floor per d=5 sector decode: ~300 us per round against a
/// ~100 us per-patch cadence, so the d=5 class runs at f_eff ~ 3 — the
/// overload that forces the shed-versus-block choice.
const D5_FLOOR_NS: u64 = 150_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = |distance: usize, seed: u64| {
        LatticeSpec::new(distance)
            .with_noise(NoiseSpec::PureDephasing { p: 0.03 })
            .with_seed(seed)
            .with_rounds(ROUNDS)
            .with_cadence_cycles(CADENCE_CYCLES)
    };
    // Both d=3 patches share one lookup factory (and therefore one prepared
    // decoder instance per worker).
    let lookup: SharedDecoderFactory = Arc::new(|| {
        Box::new(LookupDecoder::new(&Lattice::new(3).expect("d=3 is valid")).expect("d=3 fits"))
            as DynDecoder
    });

    let mut config = MachineConfig::new(&[5, 5, 3, 3], 2020);
    config.lattices = vec![
        spec(5, 2020)
            .with_push_policy(PushPolicy::Drop)
            .with_queue_budget(4)
            .with_shed_slo(0.10),
        spec(5, 2021).with_push_policy(PushPolicy::Block),
        spec(3, 2022).with_shared_decoder(lookup.clone()),
        spec(3, 2023).with_shared_decoder(lookup),
    ];
    config.workers = 3;
    config.queue_capacity = 16_384;
    config.push_policy = PushPolicy::Block;
    config.analyze_residuals = true;

    // The machine-wide factory: union-find, throttled only at d=5.
    let base: SharedDecoderFactory = Arc::new(|| Box::new(UnionFindDecoder::new()) as DynDecoder);
    let factory = ThrottledDecoder::factory_for_distance(base, D5_FLOOR_NS, 5);

    let engine = StreamingEngine::with_machine(config)?;
    println!(
        "streaming 4 lattices (d=5 Drop/budget 4, d=5 Block, 2x d=3 lookup) x {ROUNDS} rounds, \
         d=5 throttled to ~{} us per sector decode on 3 workers",
        D5_FLOOR_NS / 1000
    );
    println!();
    let outcome = engine.run(&factory);
    println!("{}", outcome.report);
    println!();

    let report = &outcome.report;
    let drop = &report.lattices[0];
    let block = &report.lattices[1];

    // --- The Drop patch shed, measurably. ------------------------------
    assert!(drop.counters.dropped > 0, "the Drop patch must shed");
    assert!(drop.shed_rate() > 0.10, "f_eff ~ 3 sheds well over the SLO");
    assert_eq!(drop.meets_shed_slo(), Some(false));
    assert_eq!(drop.verdict(), "SHEDDING");
    let drop_residual = drop.residual.expect("analysis enabled");
    assert_eq!(drop_residual.shed.rounds, drop.counters.dropped);
    assert!(
        drop_residual.failure_rate() > 0.0,
        "shedding must show a measured logical cost"
    );

    // --- The Block patch lost nothing (and paid in backlog instead). ----
    assert_eq!(block.counters.dropped, 0, "Block never sheds");
    assert_eq!(block.counters.decoded, ROUNDS);
    assert_eq!(block.shed_rate(), 0.0);
    let block_residual = block.residual.expect("analysis enabled");
    assert_eq!(block_residual.shed.rounds, 0);
    assert!(
        !block.queue_stayed_bounded(),
        "the protected overloaded patch pays with a growing backlog"
    );

    // --- Shedding is strictly worse than backpressure, in logical terms. -
    assert!(
        drop_residual.failure_rate() > block_residual.failure_rate(),
        "drop {:.4} must exceed block {:.4}",
        drop_residual.failure_rate(),
        block_residual.failure_rate()
    );

    // --- Heterogeneous decoders: per-lattice names in the report. -------
    assert_eq!(
        drop.decoder,
        format!("throttled(union-find)@{D5_FLOOR_NS}ns[d=5]")
    );
    assert_eq!(report.lattices[2].decoder, "lookup-table");
    assert_eq!(report.lattices[3].decoder, "lookup-table");
    assert!(
        report.decoder.contains('+'),
        "headline joins distinct names"
    );
    // The d=3 patches are lossless end to end.  Their own decodes are
    // microseconds, but shared FIFO rings make them wait behind throttled
    // d=5 rounds, so their queues can grow with the machine's — the
    // head-of-line coupling the per-lattice breakdown exposes.
    for fast in &report.lattices[2..] {
        assert_eq!(fast.counters.dropped, 0);
        assert_eq!(fast.counters.decoded, ROUNDS);
        assert_eq!(fast.residual.expect("analysis enabled").shed.rounds, 0);
    }

    // --- Every generated round is accounted for, shed rounds included. --
    for lattice in &report.lattices {
        assert_eq!(lattice.measured.shed, lattice.counters.dropped);
        assert_eq!(
            outcome.frame_for(lattice.lattice_id).total_recorded(),
            lattice.counters.generated,
            "identity corrections must cover shed rounds in the frame"
        );
    }

    // --- The event journal narrates the same story. ----------------------
    // Every shed round published one Shed event, so the journal's per-kind
    // totals reconcile exactly with the counters; the Drop lane's exhausted
    // budget additionally shows up as BudgetExhausted warnings.
    let journal = &report.journal;
    assert_eq!(
        journal.counts.shed, report.counters.dropped,
        "one Shed event per dropped round"
    );
    assert!(
        journal.counts.budget_exhausted > 0,
        "the Drop lane's budget refusals must be journaled"
    );
    assert!(journal.warning > 0);
    assert!(
        !journal.recent.is_empty(),
        "the report carries the newest events verbatim"
    );
    println!(
        "journal: {} events published ({} overwritten) — shed {}, budget_exhausted {}, \
         backpressure_stall {}, steal {}, verdict_flip {}",
        journal.published,
        journal.overwritten,
        journal.counts.shed,
        journal.counts.budget_exhausted,
        journal.counts.backpressure_stall,
        journal.counts.steal,
        journal.counts.verdict_flip
    );
    println!();

    println!(
        "Drop patch shed {:.1}% of its rounds and measured a {:.2}% residual failure rate; \
         the Block patch shed nothing ({:.2}% failures) and grew a {}-round backlog instead.",
        drop.shed_rate() * 100.0,
        drop_residual.failure_rate() * 100.0,
        block_residual.failure_rate() * 100.0,
        block.final_backlog
    );
    println!();
    println!(
        "Per-lattice QoS in one engine: each patch chose its own drop policy, queue budget \
         and decoder, and the residual analysis priced the shed rounds in logical errors \
         instead of assuming them away."
    );
    Ok(())
}
