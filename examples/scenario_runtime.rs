//! Scenario demo: one elastic machine under time-varying noise, recorded to
//! a replayable trace — and the replay proven byte-identical.
//!
//! A three-lattice machine runs everything the scenario plane offers in a
//! single pass:
//!
//! * lattice 0 (d=3) — the burst target: rounds 20..50 run at 5x the base
//!   dephasing rate ([`BurstEvent`] overlay),
//! * lattice 1 (d=5) — the drift target: its dephasing rate follows a
//!   sinusoid ([`DriftingErrorModel`]), one full period over the run,
//! * lattice 2 (d=3) — the elastic target: pre-registered but *dormant*, it
//!   is hot-added at machine-global round 60 (no worker has prepared its
//!   decoder until its first record arrives) and retired at round 200, its
//!   stream truncating and draining to a final frame through the packet
//!   codec's retirement watermark,
//!
//! while a scripted re-tune swaps lattice 0's channel to depolarizing noise
//! at round 120 — visible afterwards as a cut in its noise-epoch timeline.
//!
//! The run is recorded by a [`TraceRecorder`] tap ([`record_run`]); the
//! recorded [`SyndromeTrace`] is then re-served through the *same* pipeline
//! by a [`TraceSource`] ([`replay_run`]).  The assertions at the bottom are
//! the acceptance criteria: the replay reproduces the live run's
//! [`GoldenSummary`] — counters, per-lattice shed counts, merged-frame
//! digests, residual tallies — *exactly*, and the scenario actually
//! happened (journal counts the add and the retire, the retired stream is
//! truncated, the re-tune cut an epoch).
//!
//! Run with `cargo run --release --example scenario_runtime`.  The trace
//! format and the scripting model are documented in `docs/OPERATIONS.md`
//! (operator view) and `docs/ARCHITECTURE.md` (wire view).

use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
use nisqplus_qec::error_model::{BurstEvent, DriftingErrorModel};
use nisqplus_runtime::{
    golden_summary, record_run, replay_run, LatticeSpec, MachineConfig, NoiseSpec, PushPolicy,
    ScenarioScript, StreamingEngine,
};

/// Rounds configured per lattice (the retired lattice streams fewer).
const ROUNDS: u64 = 160;

fn machine() -> MachineConfig {
    let mut config = MachineConfig::new(&[3, 5, 3], 7100);
    config.lattices = vec![
        // Burst target: 5x dephasing over rounds 20..50.
        LatticeSpec::new(3)
            .with_noise(NoiseSpec::PureDephasing { p: 0.015 })
            .with_seed(7100)
            .with_rounds(ROUNDS)
            .with_cadence_cycles(0)
            .with_burst(BurstEvent::new(20, 30, 5.0).expect("valid burst")),
        // Drift target: one sinusoid period across the run.
        LatticeSpec::new(5)
            .with_noise(NoiseSpec::Drifting {
                model: DriftingErrorModel::sinusoid(0.01, 0.008, ROUNDS as f64)
                    .expect("valid drift"),
            })
            .with_seed(7101)
            .with_rounds(ROUNDS)
            .with_cadence_cycles(0),
        // Elastic target: dormant until the script adds it.
        LatticeSpec::new(3)
            .with_noise(NoiseSpec::PureDephasing { p: 0.02 })
            .with_seed(7102)
            .with_rounds(ROUNDS)
            .with_cadence_cycles(0),
    ];
    config.workers = 2;
    config.queue_capacity = 4_096;
    config.push_policy = PushPolicy::Block;
    config.analyze_residuals = true;
    config.scenario = ScenarioScript::default()
        .add_lattice(60, 2)
        .set_error_rate(120, 0, NoiseSpec::Depolarizing { p: 0.04 })
        .retire_lattice(200, 2);
    config
}

fn main() {
    let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;

    println!(
        "scenario run: 3 lattices (d=3 burst, d=5 drift, d=3 elastic) x {ROUNDS} rounds on 2 \
         workers"
    );
    println!("  script: add lattice 2 @ round 60; re-tune lattice 0 @ 120; retire lattice 2 @ 200");
    println!();

    // --- Act one: the live run, recorded round by round. -----------------
    let engine = StreamingEngine::with_machine(machine()).expect("valid config");
    let live = record_run(&engine, &factory);
    println!("{}", live.report);
    println!();

    let report = &live.report;
    let golden = golden_summary(&live);
    let trace = live
        .trace
        .clone()
        .expect("record_run records a trace")
        .with_golden(golden.clone());

    // --- The scenario actually happened. ---------------------------------
    assert_eq!(report.journal.counts.lattice_added, 1, "the hot-add fired");
    assert_eq!(report.journal.counts.lattice_retired, 1, "the retire fired");
    let elastic = &report.lattices[2];
    assert!(
        elastic.rounds > 0 && elastic.rounds < ROUNDS,
        "the elastic lattice came online and was truncated (streamed {})",
        elastic.rounds
    );
    assert_eq!(
        live.frame_for(2).total_recorded(),
        elastic.rounds,
        "every pre-watermark round drained to the final frame"
    );
    assert!(
        report.lattices[0].noise_epochs.len() >= 3,
        "burst boundaries and the re-tune cut lattice 0's timeline into epochs"
    );
    assert_eq!(
        report.counters.quarantined, 0,
        "a clean drain, no stragglers"
    );
    assert_eq!(
        report.counters.dropped, 0,
        "blocking backpressure sheds nothing"
    );
    assert_eq!(trace.len() as u64, report.counters.generated);

    // --- Act two: the replay, byte for byte. -----------------------------
    let replay_engine = StreamingEngine::with_machine(machine()).expect("valid config");
    let replayed = replay_run(&replay_engine, &trace, &factory);
    let replay_summary = golden_summary(&replayed);
    assert_eq!(
        replay_summary, golden,
        "replaying the recorded trace must reproduce the live outcome exactly"
    );
    for id in 0..3 {
        assert_eq!(
            replayed.frame_for(id).merged(),
            live.frame_for(id).merged(),
            "lattice {id}'s merged Pauli frame must be byte-identical under replay"
        );
    }

    println!(
        "recorded {} rounds across {} lattices; replayed them byte-identically",
        trace.len(),
        report.lattices.len()
    );
    println!(
        "elastic lattice streamed {}/{ROUNDS} rounds (added @60, retired @200), {} noise epochs \
         on the burst lattice, frame digests {:?}",
        elastic.rounds,
        report.lattices[0].noise_epochs.len(),
        golden.frame_digests
    );
    println!("replay == live: counters, shed counts, frames, residual tallies all exact.");
}
