//! Multi-lattice streaming demo: one engine serving a full NISQ+ machine.
//!
//! Registers eight surface-code lattices of mixed distances d ∈ {3, 5, 7} —
//! eight logical qubits, each with its own seeded syndrome stream on its own
//! cadence — and serves them all through one work-stealing decoder pool.
//! The run asserts the three invariants the sharded runtime promises:
//!
//! 1. every lattice's queue stays bounded (the decoder fabric keeps up with
//!    the whole machine, not just one patch),
//! 2. each lattice's measured backlog growth agrees with its own closed-form
//!    `BacklogModel` prediction to within 2x,
//! 3. each lattice's merged Pauli frame is byte-identical to decoding that
//!    lattice's stream sequentially offline — sharding is a transparent
//!    transport per logical qubit.
//!
//! Run with `cargo run --release --example multi_lattice_runtime`.

use nisqplus_decoders::{Decoder, DynDecoder, UnionFindDecoder};
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::lattice::Sector;
use nisqplus_runtime::{
    MachineConfig, NoiseSpec, PushPolicy, RuntimeConfig, StreamingEngine, SyndromeSource,
};

/// The machine: eight logical qubits across three code distances.
const DISTANCES: [usize; 8] = [3, 3, 3, 5, 5, 5, 7, 7];

/// Per-lattice syndrome-generation period: the paper's 400 ns cadence scaled
/// by 250x (~100 us per round per lattice), so one shared CPU core can host
/// the producer and both workers.  Eight lattices make the *aggregate*
/// arrival one round per ~12.5 us — the pool-level load the machine puts on
/// the decoder fabric — and the dynamics depend only on the service/arrival
/// ratio, which the report compares at the measured rates.
const CADENCE_CYCLES: usize = RuntimeConfig::PAPER_CADENCE_CYCLES * 250;

/// Rounds streamed per lattice.
const ROUNDS_PER_LATTICE: u64 = 1_500;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = MachineConfig::new(&DISTANCES, 2020);
    for spec in &mut config.lattices {
        spec.noise = NoiseSpec::Depolarizing { p: 0.02 };
        spec.rounds = ROUNDS_PER_LATTICE;
        spec.cadence_cycles = CADENCE_CYCLES;
    }
    config.workers = 2;
    config.push_policy = PushPolicy::Block;
    config.queue_capacity = 16_384;

    let engine = StreamingEngine::with_machine(config.clone())?;
    println!(
        "streaming {} lattices (d in {:?}) x {} rounds @ {:.0} us per lattice round \
         ({:.1} us aggregate) on {} workers",
        DISTANCES.len(),
        engine.lattice_set().distances(),
        ROUNDS_PER_LATTICE,
        config.cycle_time.cycles_to_ns(CADENCE_CYCLES) / 1000.0,
        config.aggregate_cadence_ns() / 1000.0,
        config.workers
    );
    println!();
    let outcome = engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder);
    println!("{}", outcome.report);
    println!();

    // --- 1. The fabric keeps up with every patch of the machine. ---------
    assert_eq!(
        outcome.report.counters.decoded,
        DISTANCES.len() as u64 * ROUNDS_PER_LATTICE
    );
    assert!(
        outcome.report.lattices_falling_behind().is_empty(),
        "no lattice may fall behind: {:?}",
        outcome.report.lattices_falling_behind()
    );
    assert!(outcome.report.queue_stayed_bounded());

    // --- 2. Each lattice's measured backlog agrees with its model. -------
    for lattice in &outcome.report.lattices {
        assert!(
            lattice.comparison.within(2.0),
            "lattice {} (d={}): measured growth {:.4} vs model {:.4} disagrees beyond 2x",
            lattice.lattice_id,
            lattice.distance,
            lattice.comparison.measured_growth_per_round,
            lattice.comparison.predicted_growth_per_round
        );
    }

    // --- 3. Sharding is transparent: per-lattice frames are byte-identical
    //        to decoding each lattice's stream sequentially. --------------
    let set = engine.lattice_set();
    for (lattice_id, spec, lattice) in set.iter() {
        let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed)?;
        let mut decoder = UnionFindDecoder::new();
        let mut frame = PauliFrame::new(lattice.num_data());
        for _ in 0..spec.rounds {
            let syndrome = source.next_syndrome();
            let x = decoder.decode(lattice, &syndrome, Sector::X);
            let z = decoder.decode(lattice, &syndrome, Sector::Z);
            let mut correction = x.into_pauli_string();
            correction.compose_with(z.pauli_string());
            frame.record(&correction);
        }
        let sharded = outcome.frame_for(lattice_id);
        assert_eq!(sharded.total_recorded(), spec.rounds);
        assert_eq!(
            &sharded.merged(),
            frame.as_pauli_string(),
            "lattice {lattice_id} diverged from its sequential decode"
        );
    }
    println!(
        "all {} lattices BOUNDED, per-lattice growth within 2x of each BacklogModel, and \
         every merged per-lattice frame byte-identical to its sequential decode.",
        DISTANCES.len()
    );
    println!();
    println!(
        "One engine serves the whole machine: syndromes are sharded by lattice_id through \
         the work-stealing pool, decoders are prepared once per code distance, and the \
         report's per-lattice breakdown says which patch would fall behind."
    );
    Ok(())
}
