//! Validates the committed bench artifacts at the repository root.
//!
//! The runtime bench (`cargo bench --bench runtime`) ends by writing
//! `BENCH_streaming.json` and `BENCH_lattices.json`, and the soak driver
//! (`cargo run --release --example soak`) writes `BENCH_soak.json` —
//! schema-versioned, machine-readable perf artifacts distilled from full
//! engine runs.  This
//! validator re-reads both through the same parser the artifacts were
//! written with ([`nisqplus_runtime::report`]) and fails loudly when a file
//! is missing, malformed, carries a stale `schema_version`, or contains an
//! entry with an impossible shape (unknown verdict, empty suite).  CI runs
//! it before *and* after regenerating the artifacts, so a bench change that
//! forgets to refresh the committed files cannot land silently.
//!
//! Run with `cargo run --example validate_bench`.

use nisqplus_runtime::report::read_bench_document;
use nisqplus_runtime::BenchEntry;
use std::process::ExitCode;

/// The artifacts every checkout must carry, relative to the repo root.
const ARTIFACTS: &[&str] = &[
    "BENCH_streaming.json",
    "BENCH_lattices.json",
    "BENCH_soak.json",
];

fn validate(path: &str) -> Result<(String, Vec<BenchEntry>), String> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    read_bench_document(format!("{root}{path}")).map_err(|error| format!("{path}: {error}"))
}

fn main() -> ExitCode {
    let mut failed = false;
    for path in ARTIFACTS {
        match validate(path) {
            Ok((suite, entries)) => {
                println!("{path}: suite '{suite}' OK ({} entries)", entries.len());
                for entry in &entries {
                    println!(
                        "  {:<36} {:>10.0} rounds/s  p99 {:>9.0} ns  shed {:>4}  {}",
                        entry.id,
                        entry.throughput_per_s,
                        entry.decode_p99_ns,
                        entry.shed,
                        entry.verdict
                    );
                }
            }
            Err(message) => {
                eprintln!("INVALID: {message}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "bench artifacts failed validation; regenerate with `cargo bench --bench runtime` \
             (and `cargo run --release --example soak` for BENCH_soak.json)"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
