//! Validates the committed bench artifacts at the repository root.
//!
//! The runtime bench (`cargo bench --bench runtime`) ends by writing
//! `BENCH_streaming.json` and `BENCH_lattices.json`, and the soak driver
//! (`cargo run --release --example soak`) writes `BENCH_soak.json` —
//! schema-versioned, machine-readable perf artifacts distilled from full
//! engine runs.  This
//! validator re-reads both through the same parser the artifacts were
//! written with ([`nisqplus_runtime::report`]) and fails loudly when a file
//! is missing, malformed, carries a stale `schema_version`, or contains an
//! entry with an impossible shape (unknown verdict, empty suite, negative
//! or non-finite rates, shed exceeding rounds).  The soak artifact gets one
//! extra audit: its `soak/class/*` QoS-class entries must *partition* the
//! `soak/aggregate` entry — lattices, rounds and shed counts sum exactly.
//! CI runs it before *and* after regenerating the artifacts, so a bench
//! change that forgets to refresh the committed files cannot land silently.
//!
//! Run with `cargo run --example validate_bench`.

use nisqplus_runtime::report::read_bench_document;
use nisqplus_runtime::BenchEntry;
use std::process::ExitCode;

/// The artifacts every checkout must carry, relative to the repo root.
const ARTIFACTS: &[&str] = &[
    "BENCH_streaming.json",
    "BENCH_lattices.json",
    "BENCH_soak.json",
];

fn validate(path: &str) -> Result<(String, Vec<BenchEntry>), String> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let (suite, entries) =
        read_bench_document(format!("{root}{path}")).map_err(|error| format!("{path}: {error}"))?;
    for entry in &entries {
        validate_entry(entry).map_err(|error| format!("{path}: entry '{}': {error}", entry.id))?;
    }
    if suite == "soak" {
        validate_soak_classes(&entries).map_err(|error| format!("{path}: {error}"))?;
    }
    Ok((suite, entries))
}

/// Shape checks every entry must pass regardless of suite: populated
/// identity fields and non-negative rates and latencies.
fn validate_entry(entry: &BenchEntry) -> Result<(), String> {
    if entry.lattices == 0 {
        return Err("serves zero lattices".into());
    }
    if entry.workers == 0 {
        return Err("ran with zero workers".into());
    }
    if entry.rounds == 0 {
        return Err("streamed zero rounds".into());
    }
    let rates = [
        ("throughput_per_s", entry.throughput_per_s),
        ("decode_mean_ns", entry.decode_mean_ns),
        ("decode_p50_ns", entry.decode_p50_ns),
        ("decode_p99_ns", entry.decode_p99_ns),
        ("decode_p999_ns", entry.decode_p999_ns),
        ("total_p99_ns", entry.total_p99_ns),
        ("total_p999_ns", entry.total_p999_ns),
        ("shed_rate", entry.shed_rate),
        ("residual_failure_rate", entry.residual_failure_rate),
    ];
    for (name, value) in rates {
        if !value.is_finite() || value < 0.0 {
            return Err(format!(
                "{name} is {value}, expected a finite non-negative number"
            ));
        }
    }
    for (name, value) in [
        ("shed_rate", entry.shed_rate),
        ("residual_failure_rate", entry.residual_failure_rate),
    ] {
        if value > 1.0 {
            return Err(format!("{name} is {value}, expected a fraction in [0, 1]"));
        }
    }
    if entry.shed > entry.rounds {
        return Err(format!(
            "shed {} rounds out of only {} streamed",
            entry.shed, entry.rounds
        ));
    }
    Ok(())
}

/// The soak artifact's books must balance: the `soak/class/*` QoS-class
/// breakdown partitions `soak/aggregate` — lattices, rounds and shed counts
/// sum exactly.
fn validate_soak_classes(entries: &[BenchEntry]) -> Result<(), String> {
    let aggregate = entries
        .iter()
        .find(|entry| entry.id == "soak/aggregate")
        .ok_or("missing the 'soak/aggregate' entry")?;
    let classes: Vec<&BenchEntry> = entries
        .iter()
        .filter(|entry| entry.id.starts_with("soak/class/"))
        .collect();
    if classes.is_empty() {
        return Err("no 'soak/class/*' entries to reconcile against the aggregate".into());
    }
    let lattices: usize = classes.iter().map(|entry| entry.lattices).sum();
    let rounds: u64 = classes.iter().map(|entry| entry.rounds).sum();
    let shed: u64 = classes.iter().map(|entry| entry.shed).sum();
    if lattices != aggregate.lattices {
        return Err(format!(
            "class lattices sum to {lattices}, aggregate serves {}",
            aggregate.lattices
        ));
    }
    if rounds != aggregate.rounds {
        return Err(format!(
            "class rounds sum to {rounds}, aggregate streamed {}",
            aggregate.rounds
        ));
    }
    if shed != aggregate.shed {
        return Err(format!(
            "class shed counts sum to {shed}, aggregate shed {}",
            aggregate.shed
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut failed = false;
    for path in ARTIFACTS {
        match validate(path) {
            Ok((suite, entries)) => {
                println!("{path}: suite '{suite}' OK ({} entries)", entries.len());
                for entry in &entries {
                    println!(
                        "  {:<36} {:>10.0} rounds/s  p99 {:>9.0} ns  shed {:>4}  {}",
                        entry.id,
                        entry.throughput_per_s,
                        entry.decode_p99_ns,
                        entry.shed,
                        entry.verdict
                    );
                }
            }
            Err(message) => {
                eprintln!("INVALID: {message}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "bench artifacts failed validation; regenerate with `cargo bench --bench runtime` \
             (and `cargo run --release --example soak` for BENCH_soak.json)"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
