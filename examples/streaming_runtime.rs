//! Streaming runtime demo: measure the decoding backlog instead of modeling it.
//!
//! Streams a distance-5 syndrome sequence through the lock-free runtime twice:
//!
//! 1. with the paper's SFQ mesh decoder, which keeps up with generation —
//!    the queue stays bounded (the point of NISQ+),
//! 2. with a deliberately throttled decoder slower than the cadence — the
//!    backlog grows without bound, and the measured growth per round lands
//!    within 2x of the closed-form `BacklogModel` prediction (the empirical
//!    counterpart of Figures 5 and 6).
//!
//! Both runs ride under the live observability plane: the sampler thread
//! takes periodic [`MetricsSnapshot`](nisqplus_runtime::MetricsSnapshot)s
//! (latency quantiles from the bounded log-bucket histogram, backlog,
//! journal totals), and the finished report is exported as schema-versioned
//! JSON and read back — the same round trip `BENCH_*.json` artifacts use.
//!
//! Run with `cargo run --release --example streaming_runtime`.

use nisqplus_core::SfqMeshDecoder;
use nisqplus_decoders::DynDecoder;
use nisqplus_runtime::report::read_report;
use nisqplus_runtime::{
    MachineConfig, PushPolicy, RuntimeConfig, StreamingEngine, ThrottledDecoder,
};

/// Syndrome-generation period in decoder cycles: ~10 us per round.
///
/// The paper's superconducting machine emits a round every 400 ns
/// (`RuntimeConfig::PAPER_CADENCE_CYCLES`); on a shared CPU core the producer
/// and the workers timeshare, so the demo scales the cadence by 25x and keeps
/// the *ratios* faithful — the backlog dynamics depend only on
/// `f = service rate / arrival rate`, and the report compares against the
/// model at the measured rates.
const CADENCE_CYCLES: usize = RuntimeConfig::PAPER_CADENCE_CYCLES * 25;

/// Wall-clock floor per `decode()` call.  Each round decodes two stabilizer
/// sectors, so per-round service is at least 80 us per worker — 40 us in
/// aggregate across the two workers, i.e. f >= 4 against the 10 us cadence.
/// Single-core scheduling overhead pushes the realized service time higher
/// still, which is fine: the model comparison uses the *measured* service
/// and arrival rates, not these nominal ones.
const THROTTLE_FLOOR_NS: u64 = 40_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = RuntimeConfig::new(5);
    config.rounds = 12_000;
    config.workers = 2;
    config.cadence_cycles = CADENCE_CYCLES;
    config.push_policy = PushPolicy::Block;
    config.queue_capacity = 16_384; // deep enough to hold the full backlog

    // --- Run 1: the paper's decoder, faster than the stream. -------------
    // Route through MachineConfig to switch on report export: the engine
    // writes the finished RuntimeReport to `export_path` after every run.
    let export_path = std::env::temp_dir().join("nisqplus_streaming_report.json");
    let mut machine: MachineConfig = config.into();
    machine.obs.export_path = Some(export_path.clone());
    let engine = StreamingEngine::with_machine(machine)?;
    println!(
        "streaming d={} / {} rounds @ {:.1} us per round on {} workers",
        config.distance,
        config.rounds,
        config.cadence_ns() / 1000.0,
        config.workers
    );
    println!();
    let fast = engine.run(&|| Box::new(SfqMeshDecoder::final_design()) as DynDecoder);
    println!("{}", fast.report);
    println!();
    assert!(
        fast.report.queue_stayed_bounded(),
        "the SFQ mesh decoder must keep up with syndrome generation"
    );

    // The sampler thread observed the run from the side: periodic snapshots
    // with decode quantiles served straight from the bounded histogram.
    let snapshots = &fast.report.snapshots;
    assert!(
        !snapshots.is_empty(),
        "a 120 ms run at the default 500 us cadence must be sampled"
    );
    println!(
        "observability: {} mid-run snapshots; final decode p50/p99/p999 = \
         {:.0}/{:.0}/{:.0} ns; journal published {} events",
        snapshots.len(),
        fast.report.decode_latency.quantiles.p50,
        fast.report.decode_latency.quantiles.p99,
        fast.report.decode_latency.quantiles.p999,
        fast.report.journal.published,
    );
    let last = snapshots.last().expect("non-empty");
    assert!(last.decode_p99_ns >= last.decode_p50_ns);
    assert!(
        !fast.report.metrics.is_empty(),
        "registry must be populated"
    );

    // --- Run 2: a deliberately throttled decoder (f > 1). ----------------
    let throttled = engine.run(&|| {
        Box::new(ThrottledDecoder::new(
            SfqMeshDecoder::final_design(),
            THROTTLE_FLOOR_NS,
        )) as DynDecoder
    });
    println!("{}", throttled.report);
    println!();

    // The backlog grows monotonically while generation runs...
    let timeline = &throttled.report.depth_timeline;
    println!("backlog timeline (throttled run):");
    for sample in timeline.iter().step_by(timeline.len().div_ceil(8).max(1)) {
        println!(
            "  round {:>6}  t = {:>7.2} ms  queue depth {:>6}  backlog {:>6}",
            sample.round,
            sample.elapsed_ns as f64 / 1e6,
            sample.queue_depth,
            sample.backlog
        );
    }
    let quarters: Vec<u64> = (0..4)
        .map(|q| timeline[(timeline.len() - 1) * (q + 1) / 4].backlog)
        .collect();
    assert!(
        quarters.windows(2).all(|w| w[0] < w[1]),
        "throttled backlog must grow monotonically, got {quarters:?}"
    );
    assert!(
        !throttled.report.queue_stayed_bounded(),
        "a decoder slower than generation cannot keep the queue bounded"
    );

    // ...and the measured growth validates the paper's closed-form model.
    let comparison = &throttled.report.comparison;
    println!();
    println!(
        "measured backlog growth {:.3} rounds/round vs model {:.3} at f_eff = {:.2} \
         (agreement {:.2}x)",
        comparison.measured_growth_per_round,
        comparison.predicted_growth_per_round,
        comparison.effective_ratio,
        comparison.agreement_factor()
    );
    assert!(
        comparison.within(2.0),
        "measured growth must be within 2x of the BacklogModel prediction, got {:.2}x",
        comparison.agreement_factor()
    );
    // --- The export round trip. ------------------------------------------
    // The engine wrote the throttled run's report (the latest run) to the
    // export path; reading it back through the schema-checked parser must
    // reproduce the in-memory report exactly.
    let reloaded = read_report(&export_path)?;
    assert_eq!(
        reloaded, throttled.report,
        "exported JSON must round-trip the report bit-for-bit"
    );
    println!(
        "observability: report exported to {} and reloaded intact \
         (schema v{}, {} snapshots, {} journal events)",
        export_path.display(),
        nisqplus_runtime::SCHEMA_VERSION,
        reloaded.snapshots.len(),
        reloaded.journal.published,
    );
    std::fs::remove_file(&export_path).ok();

    println!();
    println!(
        "The mesh decoder keeps the queue bounded at hardware cadence; any decoder with \
         f > 1 accumulates backlog at the modeled rate — measured, not just modeled."
    );
    Ok(())
}
