//! Custom stage-graph demo: strict-priority traffic classes on one engine.
//!
//! The default pipeline wiring spreads every lattice's rounds over the
//! worker pool.  This example rewires the graph through
//! [`PipelineOptions`]: a [`ClassRouter`] pins each traffic class to its
//! own credit channel, and [`ConsumePolicy::Priority`] makes every worker
//! drain the lowest-numbered busy channel first — a strict-priority mux, as
//! a hardware arbiter would implement it:
//!
//! ```text
//!                      ┌─► channel 0 (Block class) ──┐ priority
//! source ─► gate ─► route                            ├─► mux ─► decode ─► sink
//!                      └─► channel 1 (Drop  class) ──┘ (0 before 1)
//! ```
//!
//! * lattice 0 — the protected class: `Block` policy, no budget, channel 0.
//!   It must never lose a round, whatever the load.
//! * lattice 1 — the best-effort class: `Drop` policy with a 4-round
//!   outstanding budget, channel 1.  Under overload (a throttled decoder
//!   against an un-paced source) it sheds at the gate instead of queueing.
//!
//! The assertions are the acceptance criteria for the stage refactor's CI
//! smoke job: Block-class traffic never sheds while the Drop class does,
//! and every stage's credit books balance at quiescence.
//!
//! Run with `cargo run --release --example stage_pipeline`.  The per-stage
//! flow lines of the printed report are documented in `docs/OPERATIONS.md`.

use nisqplus_decoders::{DynDecoder, UnionFindDecoder};
use nisqplus_runtime::{
    ClassRouter, ConsumePolicy, LatticeSpec, MachineConfig, NoiseSpec, PipelineOptions, PushPolicy,
    StreamingEngine, ThrottledDecoder,
};

/// Rounds streamed per lattice.
const ROUNDS: u64 = 400;

/// Wall-clock floor per sector decode: against an un-paced source this is
/// a guaranteed overload, so the Drop class must shed.
const FLOOR_NS: u64 = 30_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = |seed: u64| {
        LatticeSpec::new(3)
            .with_noise(NoiseSpec::PureDephasing { p: 0.03 })
            .with_seed(seed)
            .with_rounds(ROUNDS)
            .with_cadence_cycles(0) // un-paced: stream as fast as possible
    };
    let mut config = MachineConfig::new(&[3, 3], 2020);
    config.lattices = vec![
        spec(2020).with_push_policy(PushPolicy::Block),
        spec(2021)
            .with_push_policy(PushPolicy::Drop)
            .with_queue_budget(4),
    ];
    config.workers = 1;
    // Per-channel capacity is queue_capacity / channels: deep enough that
    // the protected class never stalls on a channel credit.
    config.queue_capacity = 2048;

    let factory =
        || Box::new(ThrottledDecoder::new(UnionFindDecoder::new(), FLOOR_NS)) as DynDecoder;
    let engine = StreamingEngine::with_machine(config)?;
    println!(
        "streaming 2 traffic classes x {ROUNDS} rounds through a strict-priority stage graph \
         (class 0 Block, class 1 Drop/budget 4, decode throttled to ~{} us per sector)",
        FLOOR_NS / 1000
    );
    println!();
    let outcome = engine.run_with(
        PipelineOptions {
            router: Some(Box::new(ClassRouter {
                class_of: vec![0, 1],
            })),
            consume: ConsumePolicy::Priority,
            channels: Some(2),
            observer: None,
            ..PipelineOptions::default()
        },
        &factory,
    );
    println!("{}", outcome.report);
    println!();

    let report = &outcome.report;
    let block = &report.lattices[0];
    let drop = &report.lattices[1];

    // --- The protected class never sheds. -------------------------------
    assert_eq!(block.counters.dropped, 0, "Block class must never shed");
    assert_eq!(block.counters.decoded, ROUNDS);
    assert_eq!(outcome.frame_for(0).total_recorded(), ROUNDS);

    // --- The best-effort class sheds under the same load. ---------------
    assert!(drop.counters.dropped > 0, "Drop class must shed");
    assert_eq!(drop.counters.decoded + drop.counters.dropped, ROUNDS);
    assert_eq!(
        outcome.frame_for(1).total_recorded(),
        ROUNDS,
        "shed rounds enter the frame as identity corrections"
    );

    // --- The stage reports tell the same story, seam by seam. -----------
    let stage = |name: &str| {
        report
            .stages
            .iter()
            .find(|r| r.stage == name)
            .unwrap_or_else(|| panic!("missing stage report {name}"))
    };
    assert_eq!(stage("source").accepted, 2 * ROUNDS);
    // Every shed round is refused upstream (at the gate's budget lane or by
    // a creditless channel) and then discarded from the skid — the explicit
    // counted lossy path; nothing is ever lost implicitly.
    assert_eq!(stage("skid").rejected, drop.counters.dropped);
    assert!(stage("gate").rejected <= drop.counters.dropped);
    // Class channels: the Block class flowed through channel 0 in full,
    // while the Drop class was throttled to its budget on channel 1.
    assert_eq!(stage("channel.0").accepted, ROUNDS);
    assert_eq!(stage("channel.1").accepted, drop.counters.enqueued);
    for channel in ["channel.0", "channel.1"] {
        let r = stage(channel);
        assert_eq!(
            r.credits_consumed, r.credits_issued,
            "{channel}: every credit is home at quiescence"
        );
    }
    // A strict-priority mux never "steals": there is no home channel.
    assert_eq!(report.counters.stolen, 0);
    assert_eq!(stage("decode.0").emitted, report.counters.decoded);

    // --- Per-lattice backlog timelines localize the pressure. -----------
    assert!(!block.backlog_timeline.is_empty());
    let block_peak = block.backlog_timeline.iter().map(|s| s.backlog).max();
    let drop_peak = drop.backlog_timeline.iter().map(|s| s.backlog).max();
    assert!(
        drop_peak <= Some(4),
        "the Drop class backlog is capped by its 4-round budget, saw {drop_peak:?}"
    );

    println!(
        "Block class: {} rounds decoded, 0 shed (backlog peaked at {} rounds). \
         Drop class: {} decoded, {} shed at the gate (outstanding capped at {:?}).",
        block.counters.decoded,
        block_peak.unwrap_or(0),
        drop.counters.decoded,
        drop.counters.dropped,
        drop_peak.unwrap_or(0),
    );
    println!();
    println!(
        "Same engine, different graph: ClassRouter pinned each class to its own credit \
         channel, the priority mux served the protected class first, and the per-stage \
         reports measured the flow control at every seam."
    );
    Ok(())
}
