//! Quickstart: build a surface code, inject errors, decode them online with
//! the SFQ mesh decoder, and verify that the logical state survived.
//!
//! Run with `cargo run --example quickstart`.

use nisqplus_core::SfqMeshDecoder;
use nisqplus_decoders::Decoder;
use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::{classify_residual, LogicalState};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A distance-5 planar surface code: 41 data qubits, 40 ancillas.
    let lattice = Lattice::new(5)?;
    println!(
        "surface code d=5: {} data qubits, {} ancilla qubits ({} total)",
        lattice.num_data(),
        lattice.num_ancillas(),
        lattice.num_qubits()
    );

    // Pure dephasing noise at a 3% physical error rate, as in the paper's
    // headline evaluation.
    let channel = PureDephasing::new(0.03)?;
    let mut rng = ChaCha8Rng::seed_from_u64(2020);
    let mut decoder = SfqMeshDecoder::final_design();

    let mut successes = 0;
    let cycles = 20;
    for cycle in 1..=cycles {
        let error = channel.sample(&lattice, &mut rng);
        let syndrome = lattice.syndrome_of(&error);
        let defects = lattice.defects(&syndrome, Sector::X);
        let correction = decoder.decode(&lattice, &syndrome, Sector::X);
        let outcome = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
        let stats = decoder.last_stats().expect("decode just ran");
        println!(
            "cycle {cycle:2}: {} error(s), {} detection event(s), decoded in {} mesh cycles \
             ({:.2} ns) -> {outcome}",
            error.weight(),
            defects.len(),
            stats.cycles,
            stats.time_ns,
        );
        if outcome == LogicalState::Success {
            successes += 1;
        }
    }
    println!();
    println!("{successes}/{cycles} cycles preserved the logical state.");
    println!(
        "Every decode finished in tens of nanoseconds — far below the ~400 ns it takes to \
         generate the next round of syndromes, so no decoding backlog ever forms."
    );
    Ok(())
}
